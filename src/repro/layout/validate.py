"""Layout validation: the layout-model rules, checked exactly.

The checks implement the Thompson / multilayer 2-D grid model rules from
Sections 3.1 and 4.1 of the paper:

* axis discipline — vertical segments on odd layers, horizontal on even;
* edge-disjointness — two wires may *cross* at a grid point but may not
  share a unit grid edge on the same layer;
* no shared bends — a via (bend, or terminal drop to the active layer)
  occupies its grid point on every layer it passes through; no other net
  may touch that point on those layers (the no-knock-knee rule,
  generalised to ``L`` layers);
* wires avoid node interiors;
* node footprints are pairwise disjoint;
* the layout *realises* its target graph: every wire is a contiguous path
  between the footprints of its net's endpoints, and the multiset of nets
  equals the graph's edge multiset.

All checks are exact but use sorted-interval indexes so that layouts with
hundreds of thousands of segments validate in seconds.

Two implementations of the same rule set live here:

* :func:`validate_layout` — the default — runs every pass as numpy
  sort + running-maximum sweeps over the layout's
  :class:`~repro.layout.wiretable.WireTable`, falling back to exact
  Python enumeration only on the (normally empty) violating groups.
* :func:`validate_layout_legacy` — the original object-per-wire checker,
  kept verbatim as the differential-testing oracle
  (``tests/test_layout_vectorized.py`` pins the two to identical
  verdicts on both valid and mutated layouts).
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..backend import get_backend
from ..topology.graph import Graph
from .geometry import Segment, Wire
from .model import Layout

__all__ = [
    "ValidationReport",
    "validate_layout",
    "validate_layout_legacy",
    "validate_table",
]

MAX_ERRORS_KEPT = 20


@dataclass
class ValidationReport:
    ok: bool
    errors: List[str] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    num_errors: int = 0

    def _add(self, msg: str) -> None:
        self.num_errors += 1
        if len(self.errors) < MAX_ERRORS_KEPT:
            self.errors.append(msg)
        self.ok = False

    def raise_if_failed(self) -> None:
        if not self.ok:
            shown = "\n  ".join(self.errors)
            raise AssertionError(
                f"layout validation failed ({self.num_errors} errors):\n  {shown}"
            )


# ---------------------------------------------------------------------------
# interval index helpers
# ---------------------------------------------------------------------------


class _TrackIndex:
    """Per-(layer, track) sorted interval lists for overlap / point queries."""

    def __init__(self) -> None:
        # (layer, horizontal?, track) -> sorted list of (lo, hi, wire_idx)
        self._tracks: Dict[Tuple[int, bool, int], List[Tuple[int, int, int]]] = (
            defaultdict(list)
        )

    def add(self, seg: Segment, wire_idx: int) -> None:
        key = (seg.layer, seg.is_horizontal, seg.track)
        self._tracks[key].append((seg.lo, seg.hi, wire_idx))

    def finalize(self) -> None:
        for lst in self._tracks.values():
            lst.sort()

    def overlaps(self) -> List[Tuple[Tuple[int, bool, int], Tuple, Tuple]]:
        """Pairs of intervals sharing a unit grid edge on the same track.

        Same-wire touching is permitted (a path revisiting a track), but
        strict overlap is flagged even within one wire: it always indicates
        a construction bug.

        All tracks are scanned in one vectorized sweep: the sorted
        per-track interval lists are flattened, each track's coordinates
        are shifted into a disjoint numeric band, and a single running
        maximum over the shifted ``hi`` values finds every interval whose
        ``lo`` undercuts an earlier ``hi`` on the same track.  The Python
        fallback only runs to reconstruct the offending pairs, i.e. on
        (normally zero) violations.
        """
        bad: List[Tuple[Tuple[int, bool, int], Tuple, Tuple]] = []
        multi = [(key, lst) for key, lst in self._tracks.items() if len(lst) > 1]
        if not multi:
            return bad
        arrs = [np.asarray(lst, dtype=np.int64) for _key, lst in multi]
        flat = np.concatenate(arrs)
        lens = np.array([len(a) for a in arrs])
        gid = np.repeat(np.arange(len(arrs)), lens)
        lo, hi = flat[:, 0], flat[:, 1]
        band = int(hi.max() - lo.min()) + 1
        lo_adj = lo + gid * band
        cummax = np.maximum.accumulate(hi + gid * band)
        bad_idx = np.flatnonzero(lo_adj[1:] < cummax[:-1]) + 1
        if not len(bad_idx):
            return bad
        starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
        for i in bad_idx.tolist():
            g = int(np.searchsorted(starts, i, side="right")) - 1
            key, lst = multi[g]
            j = i - int(starts[g])
            # recover the running-max interval the scalar scan would have
            # paired this one with
            max_hi: Optional[int] = None
            max_item: Optional[Tuple[int, int, int]] = None
            for item in lst[:j]:
                if max_hi is None or item[1] > max_hi:
                    max_hi, max_item = item[1], item
            bad.append((key, max_item, lst[j]))
        return bad

    def nets_covering(
        self, layer: int, point: Tuple[int, int]
    ) -> List[int]:
        """Wire indexes whose segments on ``layer`` cover ``point``
        (including endpoints)."""
        x, y = point
        out: List[int] = []
        for horizontal, track, coord in ((True, y, x), (False, x, y)):
            lst = self._tracks.get((layer, horizontal, track))
            if not lst:
                continue
            i = bisect.bisect_right(lst, (coord, float("inf"), float("inf")))
            # scan left while intervals may cover coord
            j = i - 1
            while j >= 0:
                lo, hi, w = lst[j]
                if hi < coord:
                    # sorted by lo; earlier intervals can still span, keep
                    # scanning only while plausible: track lists are short
                    j -= 1
                    continue
                if lo <= coord <= hi:
                    out.append(w)
                j -= 1
        return out


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_layer_discipline(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("layer-discipline")
    L = layout.model.num_layers
    v_ok, h_ok = set(layout.model.v_layers), set(layout.model.h_layers)
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            if s.layer > L:
                rep._add(f"wire {w.net}: segment on layer {s.layer} > L={L}")
            allowed = h_ok if s.is_horizontal else v_ok
            if s.layer not in allowed:
                rep._add(
                    f"wire {w.net}: {'H' if s.is_horizontal else 'V'} segment on "
                    f"layer {s.layer} not permitted by model {layout.model.name}"
                )


def _check_contiguity_and_terminals(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("contiguity-terminals")
    for w in layout.wires:
        try:
            pts = w.path_points()
        except ValueError as e:
            rep._add(str(e))
            continue
        u, v = w.net[0], w.net[1]
        for node, point, which in ((u, pts[0], "start"), (v, pts[-1], "end")):
            r = layout.nodes.get(node)
            if r is None:
                rep._add(f"wire {w.net}: {which} node {node!r} not placed")
            elif not r.on_boundary(point):
                rep._add(
                    f"wire {w.net}: {which} point {point} not on boundary of "
                    f"node {node!r} at ({r.x},{r.y},{r.w},{r.h})"
                )


def _realizes_graph_fast(nets, placed, graph: Graph) -> bool:
    """Vectorized edge-multiset comparison for purely array-staged graphs
    with uniform int-tuple (or plain int) nodes.  Returns True only when
    the layout provably realizes the graph — any mismatch, unsupported
    net shape, or partially materialised graph falls back to the exact
    object-level path (which regenerates the legacy messages)."""
    if graph._staged_arrays() is None:
        return False
    try:
        edges, counts = graph.to_edge_array()
    except ValueError:
        return False
    k = edges.shape[2] if edges.ndim == 3 else 0
    kk = k if k else 1
    rows = _canon_net_rows(nets, k, kk)
    if rows is None:
        return False
    uniq, agg = Graph._aggregate_rows(
        rows, np.ones(len(rows), dtype=np.int64)
    )
    want_rows = edges.reshape(len(counts), 2 * kk)
    if uniq.shape != want_rows.shape or not (
        np.array_equal(uniq, want_rows) and np.array_equal(agg, counts)
    ):
        return False
    return _staged_nodes_placed(want_rows, k, kk, placed)


def _canon_net_rows(nets, k, kk):
    """Canonicalised ``(lo, hi)`` endpoint rows for uniform int-tuple (or
    plain-int) two-terminal nets, or ``None`` when the nets do not fit the
    vectorized layout (mixed arity, non-int nodes, ...)."""
    try:
        if k:
            flat = np.array([n[0] + n[1] for n in nets], dtype=np.int64)
        else:
            flat = np.array([(n[0], n[1]) for n in nets], dtype=np.int64)
    except (TypeError, ValueError):
        return None
    if flat.ndim != 2 or flat.shape != (len(nets), 2 * kk):
        return None
    a, b = flat[:, :kk], flat[:, kk:]
    flip = np.zeros(len(flat), dtype=bool)
    decided = np.zeros(len(flat), dtype=bool)
    for j in range(kk):
        less = b[:, j] < a[:, j]
        flip |= less & ~decided
        decided |= less | (b[:, j] > a[:, j])
    lo = np.where(flip[:, None], b, a)
    hi = np.where(flip[:, None], a, b)
    return np.concatenate([lo, hi], axis=1)


def _staged_nodes_placed(want_rows, k, kk, placed) -> bool:
    # a purely staged graph has no isolated nodes, so the edge endpoints
    # are exactly its node set
    gnodes = np.unique(want_rows.reshape(-1, kk), axis=0)
    if k:
        return all(t in placed for t in map(tuple, gnodes.tolist()))
    return all(x in placed for x in gnodes[:, 0].tolist())


def _check_realizes_graph(nets, placed, graph: Graph, rep: ValidationReport) -> None:
    rep.checks_run.append("realizes-graph")
    if _realizes_graph_fast(nets, placed, graph):
        return
    got: Counter = Counter()
    for net in nets:
        u, v = net[0], net[1]
        # canonicalise like Graph does
        got[_canon_edge(u, v)] += 1
    _realizes_fallback(got, placed, graph, rep)


def _realizes_fallback(got: Counter, placed, graph: Graph, rep: ValidationReport) -> None:
    """Exact object-level edge-multiset diff shared with the chunked
    validator, which accumulates ``got`` across chunks before calling."""
    want = graph.edge_multiset()
    want_c = Counter({_canon_edge(u, v): c for (u, v), c in want.items()})
    if got != want_c:
        missing = want_c - got
        extra = got - want_c
        for e, c in list(missing.items())[:5]:
            rep._add(f"graph edge {e} x{c} has no wire")
        for e, c in list(extra.items())[:5]:
            rep._add(f"wire {e} x{c} has no graph edge")
    missing_nodes = [n for n in graph.nodes() if n not in placed]
    for n in missing_nodes[:5]:
        rep._add(f"graph node {n!r} not placed")
    if missing_nodes:
        rep.num_errors += max(0, len(missing_nodes) - 5)


def _canon_edge(u, v):
    def key(n):
        return (1, n) if isinstance(n, tuple) else (0, (n,))

    return (u, v) if key(u) <= key(v) else (v, u)


def _check_track_overlaps(idx: _TrackIndex, layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("track-overlap")
    for key, a, b in idx.overlaps():
        layer, horiz, track = key
        rep._add(
            f"layer {layer} {'H' if horiz else 'V'} track {track}: intervals "
            f"[{a[0]},{a[1]}] (wire {layout.wires[a[2]].net}) and "
            f"[{b[0]},{b[1]}] (wire {layout.wires[b[2]].net}) overlap"
        )


def _columns(layout: Layout) -> List[Tuple[int, int, int, int, int]]:
    """Via/terminal columns ``(x, y, z_lo, z_hi, wire_idx)``.

    Bends span between their two segment layers.  Terminals drop to the
    active layer (layer 1) where the node sits; in the two-layer Thompson
    case this makes a terminal of an H-segment occupy layers 1..2 at the
    attachment point, which is exactly the model's contact.
    """
    cols: List[Tuple[int, int, int, int, int]] = []
    for wi, w in enumerate(layout.wires):
        try:
            pts = w.path_points()
        except ValueError:
            continue  # discontiguous wires are reported by the path check
        segs = w.segments
        first, last = segs[0], segs[-1]
        cols.append((pts[0][0], pts[0][1], 1, first.layer, wi))
        cols.append((pts[-1][0], pts[-1][1], 1, last.layer, wi))
        for i in range(len(segs) - 1):
            la, lb = segs[i].layer, segs[i + 1].layer
            if la != lb:
                x, y = pts[i + 1]
                cols.append((x, y, min(la, lb), max(la, lb), wi))
    return cols


def _check_via_conflicts(
    idx: _TrackIndex, layout: Layout, rep: ValidationReport
) -> None:
    rep.checks_run.append("via-conflicts")
    cols = _columns(layout)
    by_point: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = defaultdict(list)
    for x, y, zlo, zhi, wi in cols:
        by_point[(x, y)].append((zlo, zhi, wi))
    # column-vs-column: overlapping z-ranges of different nets at one point
    for (x, y), lst in by_point.items():
        if len(lst) > 1:
            lst.sort()
            for i in range(len(lst)):
                for j in range(i + 1, len(lst)):
                    (alo, ahi, wa), (blo, bhi, wb) = lst[i], lst[j]
                    if wa != wb and alo <= bhi and blo <= ahi:
                        rep._add(
                            f"via columns of wires {layout.wires[wa].net} and "
                            f"{layout.wires[wb].net} collide at ({x},{y}) "
                            f"layers [{alo},{ahi}]&[{blo},{bhi}]"
                        )
    # column-vs-segment: another net's segment covering the column point on a
    # spanned layer.  Endpoint touches are columns themselves (handled above)
    # so only strict-interior coverage is an undetected conflict; we query
    # inclusive and filter own-wire and endpoint hits via the by_point map.
    for x, y, zlo, zhi, wi in cols:
        for layer in range(zlo, zhi + 1):
            for other in idx.nets_covering(layer, (x, y)):
                if other == wi:
                    continue
                # Endpoint touching at this exact point by `other` would mean
                # `other` has a column here too; that pair is already flagged
                # (or safely z-disjoint).  Check strict interior only:
                if _covers_strict_interior(layout.wires[other], layer, (x, y)):
                    rep._add(
                        f"wire {layout.wires[other].net} passes through via of "
                        f"wire {layout.wires[wi].net} at ({x},{y}) layer {layer}"
                    )


def _covers_strict_interior(w: Wire, layer: int, point: Tuple[int, int]) -> bool:
    x, y = point
    for s in w.segments:
        if s.layer != layer or not s.covers_point(point):
            continue
        if s.is_horizontal and s.x1 < x < s.x2:
            return True
        if s.is_vertical and s.y1 < y < s.y2:
            return True
    return False


def _nodes_disjoint_sweep(nodes, rep: ValidationReport) -> None:
    """Exact pairwise node-overlap sweep (shared by both validators)."""
    items = sorted(nodes.items(), key=lambda kv: (kv[1].x, kv[1].y))
    active: List[Tuple[Hashable, object]] = []
    for node, r in items:
        still = []
        for onode, o in active:
            if o.x2 <= r.x:
                continue
            still.append((onode, o))
            if r.intersects(o, strict=True):
                rep._add(f"nodes {node!r} and {onode!r} overlap")
        active = still
        active.append((node, r))


def _check_nodes_disjoint(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("nodes-disjoint")
    _nodes_disjoint_sweep(layout.nodes, rep)


class _NodeBands:
    """Spatial index over node rects: bands of identical y-interval (for H
    segment queries) and of identical x-interval (for V queries)."""

    def __init__(self, layout: Layout) -> None:
        ybands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        xbands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        for r in layout.nodes.values():
            ybands[(r.y, r.y2)].append((r.x, r.x2))
            xbands[(r.x, r.x2)].append((r.y, r.y2))
        self.ybands = {k: sorted(v) for k, v in ybands.items()}
        self.xbands = {k: sorted(v) for k, v in xbands.items()}

    @staticmethod
    def _hits(intervals: List[Tuple[int, int]], lo: int, hi: int) -> bool:
        """Any stored open interval strictly overlapping open ``(lo, hi)``?"""
        i = bisect.bisect_left(intervals, (hi, hi))
        # candidates end before index i; check the few whose end exceeds lo
        j = i - 1
        while j >= 0:
            a, b = intervals[j]
            if b <= lo:
                # intervals sorted by start; earlier ones could still be long
                j -= 1
                continue
            if a < hi and b > lo:
                return True
            j -= 1
        return False

    def h_segment_hits_interior(self, y: int, lo: int, hi: int) -> bool:
        for (by, by2), xs in self.ybands.items():
            if by < y < by2 and self._hits(xs, lo, hi):
                return True
        return False

    def v_segment_hits_interior(self, x: int, lo: int, hi: int) -> bool:
        for (bx, bx2), ys in self.xbands.items():
            if bx < x < bx2 and self._hits(ys, lo, hi):
                return True
        return False


def _check_wires_avoid_nodes(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("wires-avoid-nodes")
    bands = _NodeBands(layout)
    for w in layout.wires:
        for s in w.segments:
            if s.is_horizontal:
                if bands.h_segment_hits_interior(s.y1, s.x1, s.x2):
                    rep._add(
                        f"wire {w.net}: H segment y={s.y1} x[{s.x1},{s.x2}] "
                        f"crosses a node interior"
                    )
            else:
                if bands.v_segment_hits_interior(s.x1, s.y1, s.y2):
                    rep._add(
                        f"wire {w.net}: V segment x={s.x1} y[{s.y1},{s.y2}] "
                        f"crosses a node interior"
                    )


def _check_terminals_distinct(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("terminals-distinct")
    seen: Dict[Tuple[int, int], Tuple] = {}
    for w in layout.wires:
        try:
            pts = w.path_points()
        except ValueError:
            continue
        for p in (pts[0], pts[-1]):
            if p in seen and seen[p] != w.net:
                rep._add(
                    f"terminal point {p} shared by wires {seen[p]} and {w.net}"
                )
            seen[p] = w.net


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def validate_layout_legacy(
    layout: Layout,
    graph: Optional[Graph] = None,
    check_nodes: bool = True,
    check_vias: bool = True,
) -> ValidationReport:
    """The original object-per-wire checker, kept as the differential
    oracle for :func:`validate_layout`."""
    rep = ValidationReport(ok=True)
    _check_layer_discipline(layout, rep)
    _check_contiguity_and_terminals(layout, rep)

    idx = _TrackIndex()
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            idx.add(s, wi)
    idx.finalize()
    _check_track_overlaps(idx, layout, rep)
    if check_vias:
        _check_via_conflicts(idx, layout, rep)
        _check_terminals_distinct(layout, rep)
    if check_nodes:
        _check_nodes_disjoint(layout, rep)
        _check_wires_avoid_nodes(layout, rep)
    if graph is not None:
        _check_realizes_graph(
            [w.net for w in layout.wires], set(layout.nodes), graph, rep
        )
    return rep


# ---------------------------------------------------------------------------
# vectorized checks over a WireTable
# ---------------------------------------------------------------------------
#
# Every `_vt_*` function below enforces the same rule as its object-level
# counterpart above, as a numpy sweep.  The shared pattern: sort segments
# (or via columns) into groups, shift each group's coordinates into a
# disjoint numeric band, and one running maximum finds every element that
# undercuts an earlier extent in its group.  Exact Python enumeration runs
# only over the flagged groups, so valid layouts never leave numpy.


def _bulk(rep: ValidationReport, count: int, messages) -> None:
    """Register ``count`` errors, materialising only as many messages as
    the report still keeps (formatting is the expensive part)."""
    if count <= 0:
        return
    budget = min(MAX_ERRORS_KEPT - len(rep.errors), count)
    taken = 0
    for msg in messages:
        if taken >= budget:
            break
        rep._add(msg)
        taken += 1
    rep.num_errors += count - taken
    rep.ok = False


def _vt_layer_discipline(t, model, rep: ValidationReport) -> None:
    rep.checks_run.append("layer-discipline")
    if t.num_segments == 0:
        return
    L = model.num_layers
    over = t.layer > L
    horiz = t.is_horizontal
    h_ok = np.isin(t.layer, np.asarray(model.h_layers, dtype=np.int64))
    v_ok = np.isin(t.layer, np.asarray(model.v_layers, dtype=np.int64))
    bad_axis = np.where(horiz, ~h_ok, ~v_ok)
    count = int(over.sum()) + int(bad_axis.sum())
    if not count:
        return
    w_of = t.wire_of

    def msgs():
        for i in np.flatnonzero(over | bad_axis).tolist():
            net = t.nets[int(w_of[i])]
            layer = int(t.layer[i])
            if over[i]:
                yield f"wire {net}: segment on layer {layer} > L={L}"
            if bad_axis[i]:
                yield (
                    f"wire {net}: {'H' if horiz[i] else 'V'} segment on "
                    f"layer {layer} not permitted by model {model.name}"
                )

    _bulk(rep, count, msgs())


def _vt_contiguity_terminals(t, nodes, rep: ValidationReport) -> None:
    rep.checks_run.append("contiguity-terminals")
    nw = t.num_wires
    if nw == 0:
        return
    paths = t.paths()
    sx = paths.px[paths.pt_indptr[:-1]]
    sy = paths.py[paths.pt_indptr[:-1]]
    ex = paths.px[paths.pt_indptr[1:] - 1]
    ey = paths.py[paths.pt_indptr[1:] - 1]
    keys = list(nodes.keys())
    nid = {k: i for i, k in enumerate(keys)}
    ui = np.fromiter((nid.get(net[0], -1) for net in t.nets), np.int64, nw)
    vi = np.fromiter((nid.get(net[1], -1) for net in t.nets), np.int64, nw)
    if keys:
        rx = np.fromiter((r.x for r in nodes.values()), np.int64, len(keys))
        ry = np.fromiter((r.y for r in nodes.values()), np.int64, len(keys))
        rx2 = np.fromiter((r.x2 for r in nodes.values()), np.int64, len(keys))
        ry2 = np.fromiter((r.y2 for r in nodes.values()), np.int64, len(keys))

        def on_bd(px_, py_, ridx):
            has = ridx >= 0
            r = np.where(has, ridx, 0)
            inb = (px_ >= rx[r]) & (px_ <= rx2[r]) & (py_ >= ry[r]) & (py_ <= ry2[r])
            strict = (px_ > rx[r]) & (px_ < rx2[r]) & (py_ > ry[r]) & (py_ < ry2[r])
            return has & inb & ~strict

        s_ok = on_bd(sx, sy, ui)
        e_ok = on_bd(ex, ey, vi)
    else:
        s_ok = np.zeros(nw, dtype=bool)
        e_ok = np.zeros(nw, dtype=bool)
    good = ~paths.bad
    s_bad = good & ~s_ok
    e_bad = good & ~e_ok
    count = int(paths.bad.sum()) + int(s_bad.sum()) + int(e_bad.sum())
    if not count:
        return

    def msgs():
        for wi in np.flatnonzero(paths.bad | s_bad | e_bad).tolist():
            net = t.nets[wi]
            if paths.bad[wi]:
                j = int(paths.bad_at[wi])
                if j == 0:
                    yield f"wire {net}: segments 0/1 not contiguous"
                else:
                    yield f"wire {net}: segment {j} not contiguous with path"
                continue
            ends = (
                ("start", s_bad[wi], (int(sx[wi]), int(sy[wi])), net[0]),
                ("end", e_bad[wi], (int(ex[wi]), int(ey[wi])), net[1]),
            )
            for which, bad_flag, p, node in ends:
                if not bad_flag:
                    continue
                r = nodes.get(node)
                if r is None:
                    yield f"wire {net}: {which} node {node!r} not placed"
                else:
                    yield (
                        f"wire {net}: {which} point {p} not on boundary of "
                        f"node {node!r} at ({r.x},{r.y},{r.w},{r.h})"
                    )

    _bulk(rep, count, msgs())


def _track_overlap_sweep(
    layer, horiz, track, lo, hi, w, net_at,
    be=None, msg_cap: int = MAX_ERRORS_KEPT,
):
    """Banded running-max sweep over per-track intervals.

    Rows describe segments (layer, orientation flag, track, extent
    ``[lo, hi]``, owning wire); ``net_at(i)`` resolves row ``i``'s net
    lazily for message formatting.  Returns ``(count, keyed)`` where
    ``keyed`` holds at most ``msg_cap`` ``(sort_key, message)`` pairs in
    sweep order — the key is the flagged row's global sort tuple, which
    lets the chunked validator merge per-bucket results back into the
    monolithic emission order.
    """
    ns = len(layer)
    if ns < 2:
        return 0, []
    be = get_backend(be)
    order = np.lexsort((w, hi, lo, track, horiz, layer))
    lay_s, hz_s, tr_s = layer[order], horiz[order], track[order]
    lo_s, hi_s, w_s = lo[order], hi[order], w[order]
    new = np.empty(ns, dtype=bool)
    new[0] = True
    new[1:] = (
        (lay_s[1:] != lay_s[:-1])
        | (hz_s[1:] != hz_s[:-1])
        | (tr_s[1:] != tr_s[:-1])
    )
    gid = np.cumsum(new) - 1
    mn = int(lo_s.min())
    band = int(hi_s.max()) - mn + 1
    cummax = be.cummax((hi_s - mn) + gid * band)
    bad = np.zeros(ns, dtype=bool)
    bad[1:] = ((lo_s[1:] - mn) + gid[1:] * band) < cummax[:-1]
    count = int(bad.sum())
    if not count:
        return 0, []
    starts = np.flatnonzero(new)
    keyed = []
    for i in np.flatnonzero(bad).tolist():
        if len(keyed) >= msg_cap:
            break
        g0 = int(starts[int(gid[i])])
        # recover the running-max interval the scalar scan pairs with
        mx = g0
        for j in range(g0 + 1, i):
            if int(hi_s[j]) > int(hi_s[mx]):
                mx = j
        key = (
            int(lay_s[i]), int(hz_s[i]), int(tr_s[i]),
            int(lo_s[i]), int(hi_s[i]), int(w_s[i]),
        )
        keyed.append((key, (
            f"layer {int(lay_s[i])} {'H' if hz_s[i] else 'V'} track "
            f"{int(tr_s[i])}: intervals "
            f"[{int(lo_s[mx])},{int(hi_s[mx])}] (wire {net_at(int(order[mx]))}) and "
            f"[{int(lo_s[i])},{int(hi_s[i])}] (wire {net_at(int(order[i]))}) overlap"
        )))
    return count, keyed


def _vt_track_overlaps(t, rep: ValidationReport, be=None) -> None:
    rep.checks_run.append("track-overlap")
    ns = t.num_segments
    if ns < 2:
        return
    horiz = t.is_horizontal.astype(np.int64)
    track = np.where(horiz == 1, t.y1, t.x1)
    lo = np.where(horiz == 1, t.x1, t.y1)
    hi = np.where(horiz == 1, t.x2, t.y2)
    w_of = t.wire_of
    count, keyed = _track_overlap_sweep(
        t.layer, horiz, track, lo, hi, w_of,
        lambda r: t.nets[int(w_of[r])], be=be,
    )
    _bulk(rep, count, (m for _k, m in keyed))


def _vt_columns(t):
    """Via/terminal columns ``(x, y, z_lo, z_hi, wire_idx)`` as arrays —
    the vectorized :func:`_columns` (discontiguous wires excluded)."""
    paths = t.paths()
    good = ~paths.bad
    gw = np.flatnonzero(good)
    first = t.indptr[:-1]
    last = t.indptr[1:] - 1
    sx = paths.px[paths.pt_indptr[:-1]][gw]
    sy = paths.py[paths.pt_indptr[:-1]][gw]
    ex = paths.px[paths.pt_indptr[1:] - 1][gw]
    ey = paths.py[paths.pt_indptr[1:] - 1][gw]
    t1 = t.layer[first[gw]] if gw.size else np.zeros(0, dtype=np.int64)
    t2 = t.layer[last[gw]] if gw.size else np.zeros(0, dtype=np.int64)
    ones = np.ones(gw.size, dtype=np.int64)
    w_of = t.wire_of
    if t.num_segments > 1:
        inner = np.flatnonzero(w_of[:-1] == w_of[1:])
        ch = t.layer[inner] != t.layer[inner + 1]
        bi = inner[ch]
        bw = w_of[bi]
        keep = good[bw]
        bi, bw = bi[keep], bw[keep]
    else:
        bi = bw = np.zeros(0, dtype=np.int64)
    # the joint after global segment i of wire w is path point i + w + 1
    bx = paths.px[bi + bw + 1]
    by = paths.py[bi + bw + 1]
    bzlo = np.minimum(t.layer[bi], t.layer[bi + 1]) if bi.size else bi
    bzhi = np.maximum(t.layer[bi], t.layer[bi + 1]) if bi.size else bi
    cx = np.concatenate([sx, ex, bx])
    cy = np.concatenate([sy, ey, by])
    zlo = np.concatenate([ones, ones, bzlo])
    zhi = np.concatenate([t1, t2, bzhi])
    cw = np.concatenate([gw, gw, bw])
    return cx, cy, zlo, zhi, cw


def _via_col_sweep(
    cx, cy, zlo, zhi, cw, net_at, be=None, msg_cap: int = MAX_ERRORS_KEPT,
):
    """Pairwise z-range collision sweep over via columns grouped by point.

    ``net_at(i)`` resolves column row ``i``'s net lazily.  Returns
    ``(count, keyed)`` — at most ``msg_cap`` ``((x, y, i, j), message)``
    pairs in point-then-pair order, the key sorting identically to the
    monolithic emission order so spill buckets merge exactly.
    """
    n = len(cx)
    if n < 2:
        return 0, []
    be = get_backend(be)
    order = np.lexsort((cw, zhi, zlo, cy, cx))
    X, Y = cx[order], cy[order]
    A, B, W = zlo[order], zhi[order], cw[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    new[1:] = (X[1:] != X[:-1]) | (Y[1:] != Y[:-1])
    gid = np.cumsum(new) - 1
    mn = int(A.min())
    band = int(B.max()) - mn + 1
    cm = be.cummax((B - mn) + gid * band)
    cand = np.zeros(n, dtype=bool)
    # z-ranges sorted by zlo: a later column intersects an earlier one iff
    # its zlo does not clear the running max zhi (inclusive)
    cand[1:] = ((A[1:] - mn) + gid[1:] * band) <= cm[:-1]
    if not cand.any():
        return 0, []
    starts = np.flatnonzero(new)
    ends = np.append(starts[1:], n)
    count = 0
    keyed = []
    for g in np.unique(gid[cand]).tolist():
        g0, g1 = int(starts[g]), int(ends[g])
        lst = [
            (int(A[k]), int(B[k]), int(W[k]), int(order[k]))
            for k in range(g0, g1)
        ]
        x_, y_ = int(X[g0]), int(Y[g0])
        for i in range(len(lst)):
            for j in range(i + 1, len(lst)):
                (alo, ahi, wa, ra), (blo, bhi, wb, rb) = lst[i], lst[j]
                if wa != wb and alo <= bhi and blo <= ahi:
                    count += 1
                    if len(keyed) < msg_cap:
                        keyed.append(((x_, y_, i, j), (
                            f"via columns of wires {net_at(ra)} and "
                            f"{net_at(rb)} collide at ({x_},{y_}) "
                            f"layers [{alo},{ahi}]&[{blo},{bhi}]"
                        )))
    return count, keyed


def _vt_via_col_conflicts(
    t, cx, cy, zlo, zhi, cw, rep: ValidationReport, be=None
) -> None:
    count, keyed = _via_col_sweep(
        cx, cy, zlo, zhi, cw, lambda r: t.nets[int(cw[r])], be=be
    )
    _bulk(rep, count, (m for _k, m in keyed))


def _via_seg_queries(cx, cy, zlo, zhi, cw):
    """Expand via columns into one point query per (column, spanned layer):
    returns ``(ql, qx, qy, qw)`` layer/point/wire arrays."""
    reps = zhi - zlo + 1
    nq = int(reps.sum())
    offs = np.zeros(len(cx), dtype=np.int64)
    np.cumsum(reps[:-1], out=offs[1:])
    ql = (np.arange(nq, dtype=np.int64) - np.repeat(offs, reps)) + np.repeat(zlo, reps)
    qc = np.repeat(np.arange(len(cx), dtype=np.int64), reps)
    return ql, cx[qc], cy[qc], cw[qc]


def _via_seg_orientation(
    s_lay, s_fix, s_lo, s_hi, s_w, seg_net_at, ql, qx, qy, qw, q_net_at,
    is_h, be=None, msg_cap: int = MAX_ERRORS_KEPT,
):
    """Single-orientation core of the via-vs-segment conflict sweep.

    Segments of one orientation are described by layer, fixed coordinate
    (track), variable extent ``[lo, hi]`` and owning wire; queries by
    layer, point and owning wire.  A hit is a different-wire segment
    strictly covering the query point on the query layer.
    ``seg_net_at(i)`` / ``q_net_at(i)`` resolve nets lazily from original
    segment/query row indices.  Returns ``(count, keyed)`` with at most
    ``msg_cap`` ``((q, j), message)`` pairs in the monolithic sweep's
    emission order, keyed by (query row, per-query hit ordinal) so the
    chunked validator can remap ``q`` to a global query key and merge
    spill buckets exactly.
    """
    count = 0
    keyed = []
    if not len(s_lay) or not len(ql):
        return count, keyed
    be = get_backend(be)
    q_fix = qy if is_h else qx
    q_var = qx if is_h else qy
    fmin = min(int(s_fix.min()), int(q_fix.min()))
    fspan = max(int(s_fix.max()), int(q_fix.max())) - fmin + 1
    enc_s = s_lay * fspan + (s_fix - fmin)
    enc_q = ql * fspan + (q_fix - fmin)
    order = np.lexsort((s_lo, enc_s))
    enc_ss, lo_ss, hi_ss, w_ss = enc_s[order], s_lo[order], s_hi[order], s_w[order]
    uniq, g_start = np.unique(enc_ss, return_index=True)
    g_end = np.append(g_start[1:], len(enc_ss))
    gs = np.searchsorted(uniq, enc_ss)
    xmin = min(int(lo_ss.min()), int(q_var.min()))
    xband = max(int(hi_ss.max()), int(q_var.max())) - xmin + 1
    cm = be.cummax((hi_ss - xmin) + gs * xband)
    q_gpos = np.searchsorted(uniq, enc_q)
    in_range = q_gpos < len(uniq)
    has_group = in_range.copy()
    has_group[in_range] = uniq[q_gpos[in_range]] == enc_q[in_range]
    pos = np.searchsorted(
        enc_ss * xband + (lo_ss - xmin),
        enc_q * xband + (q_var - xmin),
        side="left",
    )
    idx = np.flatnonzero(has_group & (pos > 0))
    if not idx.size:
        return count, keyed
    # earlier groups can never exceed this group's threshold, so one
    # prefix cummax answers "any same-group segment with lo < q < hi?"
    thr = q_gpos[idx] * xband + (q_var[idx] - xmin)
    hit_idx = idx[cm[pos[idx] - 1] > thr]
    for q in hit_idx.tolist():
        g = int(q_gpos[q])
        g0, g1 = int(g_start[g]), int(g_end[g])
        xv = int(q_var[q])
        wi = int(qw[q])
        sl = slice(g0, g1)
        mseg = (lo_ss[sl] < xv) & (hi_ss[sl] > xv) & (w_ss[sl] != wi)
        for j, k in enumerate(np.flatnonzero(mseg).tolist()):
            count += 1
            if len(keyed) < msg_cap:
                keyed.append(((q, j), (
                    f"wire {seg_net_at(int(order[g0 + k]))} passes through "
                    f"via of wire {q_net_at(q)} at "
                    f"({int(qx[q])},{int(qy[q])}) layer {int(ql[q])}"
                )))
    return count, keyed


def _vt_via_seg_conflicts(
    t, cx, cy, zlo, zhi, cw, rep: ValidationReport, be=None
) -> None:
    if len(cx) == 0 or t.num_segments == 0:
        return
    be = get_backend(be)
    ql, qx, qy, qw = _via_seg_queries(cx, cy, zlo, zhi, cw)
    count = 0
    messages: List[str] = []
    horiz = t.is_horizontal
    w_of = t.wire_of
    for is_h in (True, False):
        si = np.flatnonzero(horiz if is_h else ~horiz)
        if not si.size:
            continue
        sw = w_of[si]
        c, keyed = _via_seg_orientation(
            t.layer[si],
            (t.y1 if is_h else t.x1)[si],
            (t.x1 if is_h else t.y1)[si],
            (t.x2 if is_h else t.y2)[si],
            sw,
            lambda r, sw=sw: t.nets[int(sw[r])],
            ql, qx, qy, qw,
            lambda q: t.nets[int(qw[q])],
            is_h,
            be=be, msg_cap=MAX_ERRORS_KEPT - len(messages),
        )
        count += c
        messages.extend(m for _k, m in keyed)
    _bulk(rep, count, iter(messages))


def _vt_terminals_distinct(t, rep: ValidationReport) -> None:
    rep.checks_run.append("terminals-distinct")
    paths = t.paths()
    gw = np.flatnonzero(~paths.bad)
    n = gw.size
    if n < 2:
        return
    sx = paths.px[paths.pt_indptr[:-1]][gw]
    sy = paths.py[paths.pt_indptr[:-1]][gw]
    ex = paths.px[paths.pt_indptr[1:] - 1][gw]
    ey = paths.py[paths.pt_indptr[1:] - 1][gw]
    tx = np.empty(2 * n, dtype=np.int64)
    ty = np.empty(2 * n, dtype=np.int64)
    tx[0::2], tx[1::2] = sx, ex
    ty[0::2], ty[1::2] = sy, ey
    tw = np.repeat(gw, 2)
    net_id: Dict = {}
    nid_w = np.empty(t.num_wires, dtype=np.int64)
    for i, net in enumerate(t.nets):
        nid_w[i] = net_id.setdefault(net, len(net_id))
    tn = nid_w[tw]
    # stable sort by point, preserving (wire order, start-then-end) within
    # a point group — exactly the legacy dict's last-seen semantics
    order = np.lexsort((np.arange(2 * n), ty, tx))
    X, Y, N_, W = tx[order], ty[order], tn[order], tw[order]
    same = (X[1:] == X[:-1]) & (Y[1:] == Y[:-1])
    err = same & (N_[1:] != N_[:-1])
    count = int(err.sum())
    if not count:
        return

    def msgs():
        for i in (np.flatnonzero(err) + 1).tolist():
            p = (int(X[i]), int(Y[i]))
            yield (
                f"terminal point {p} shared by wires "
                f"{t.nets[int(W[i - 1])]} and {t.nets[int(W[i])]}"
            )

    _bulk(rep, count, msgs())


def _vt_nodes_disjoint(nodes, rep: ValidationReport, be=None) -> None:
    rep.checks_run.append("nodes-disjoint")
    n = len(nodes)
    if n < 2:
        return
    be = get_backend(be)
    rx = np.fromiter((r.x for r in nodes.values()), np.int64, n)
    ry = np.fromiter((r.y for r in nodes.values()), np.int64, n)
    rx2 = np.fromiter((r.x2 for r in nodes.values()), np.int64, n)
    ry2 = np.fromiter((r.y2 for r in nodes.values()), np.int64, n)
    order = np.lexsort((rx, ry2, ry))
    Y1, Y2, X1, X2 = ry[order], ry2[order], rx[order], rx2[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    new[1:] = (Y1[1:] != Y1[:-1]) | (Y2[1:] != Y2[:-1])
    gid = np.cumsum(new) - 1
    mn = int(X1.min())
    band = int(X2.max()) - mn + 1
    cm = be.cummax((X2 - mn) + gid * band)
    flag = np.zeros(n, dtype=bool)
    flag[1:] = ((X1[1:] - mn) + gid[1:] * band) < cm[:-1]
    flag &= Y2 > Y1  # zero-height rects cannot strictly overlap in-band
    violation = bool(flag.any())
    if not violation:
        # bands whose y-intervals strictly overlap may hide cross-band hits
        starts = np.flatnonzero(new)
        ends = np.append(starts[1:], n)
        bY1, bY2 = Y1[starts], Y2[starts]
        nb = len(starts)
        if nb > 1:
            cmy = np.maximum.accumulate(bY2)
            cross = (np.flatnonzero(bY1[1:] < cmy[:-1]) + 1).tolist()
            for j in cross:
                for i in range(j):
                    if not (bY1[i] < bY2[j] and bY1[j] < bY2[i]):
                        continue
                    A1 = X1[starts[i]:ends[i]]
                    Acm = np.maximum.accumulate(X2[starts[i]:ends[i]])
                    B1 = X1[starts[j]:ends[j]]
                    B2 = X2[starts[j]:ends[j]]
                    pos = np.searchsorted(A1, B2, side="left")
                    hit = (pos > 0) & (Acm[np.maximum(pos - 1, 0)] > B1)
                    if bool(hit.any()):
                        violation = True
                        break
                if violation:
                    break
    if violation:
        # exact sweep reproduces the legacy pair count and messages
        _nodes_disjoint_sweep(nodes, rep)


class _BandIndex:
    """Vectorized point-in-band + interval-overlap queries over node
    bands (rects grouped by identical fixed-axis interval)."""

    def __init__(self, bands: Dict[Tuple[int, int], List[Tuple[int, int]]]) -> None:
        items = sorted(bands.items())
        self.a = np.array([k[0] for k, _v in items], dtype=np.int64)
        self.b = np.array([k[1] for k, _v in items], dtype=np.int64)
        self.disjoint = bool(np.all(self.a[1:] >= self.b[:-1])) if len(items) > 1 else True
        ivs = [sorted(v) for _k, v in items]
        self.iv_lens = np.array([len(v) for v in ivs], dtype=np.int64)
        self.iv_start = np.zeros(len(items), dtype=np.int64)
        np.cumsum(self.iv_lens[:-1], out=self.iv_start[1:])
        flat = [iv for lst in ivs for iv in lst]
        self.iv1 = np.array([p[0] for p in flat], dtype=np.int64)
        iv2 = np.array([p[1] for p in flat], dtype=np.int64)
        gid = np.repeat(np.arange(len(items), dtype=np.int64), self.iv_lens)
        self.xmin = int(self.iv1.min()) if len(flat) else 0
        self.xband = (int(iv2.max()) - self.xmin + 1) if len(flat) else 1
        self.key = gid * self.xband + (self.iv1 - self.xmin)
        self.cm = np.maximum.accumulate((iv2 - self.xmin) + gid * self.xband)

    def hits(self, fix: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """For each query segment: strictly inside some band's open fixed
        interval AND strictly overlapping one of its stored intervals?"""
        out = np.zeros(len(fix), dtype=bool)
        if not len(self.a) or not len(fix):
            return out
        if self.disjoint:
            idx = np.searchsorted(self.a, fix, side="left") - 1
            idxc = np.maximum(idx, 0)
            inside = (idx >= 0) & (fix < self.b[idxc])
            if not inside.any():
                return out
            g = idxc
            # clamp query offsets into the group's numeric band so the
            # search never spills into a neighbouring group's values
            qoff = np.clip(hi - self.xmin, 0, self.xband)
            pos = np.searchsorted(self.key, g * self.xband + qoff, side="left")
            cand = inside & (pos > 0)
            thr = g * self.xband + np.maximum(lo - self.xmin, -1)
            cand[cand] = self.cm[pos[cand] - 1] > thr[cand]
            return cand
        # overlapping bands (heterogeneous node sizes): per-band masks
        for g in range(len(self.a)):
            m = (fix > self.a[g]) & (fix < self.b[g])
            if not m.any():
                continue
            s0 = int(self.iv_start[g])
            s1 = s0 + int(self.iv_lens[g])
            iv1 = self.iv1[s0:s1]
            cm = self.cm[s0:s1] - g * self.xband + self.xmin
            pos = np.searchsorted(iv1, hi[m], side="left")
            sub = (pos > 0) & (cm[np.maximum(pos - 1, 0)] > lo[m])
            mm = np.zeros(len(fix), dtype=bool)
            mm[m] = sub
            out |= mm
        return out


def _vt_wires_avoid_nodes(t, nodes, rep: ValidationReport) -> None:
    rep.checks_run.append("wires-avoid-nodes")
    if not nodes or t.num_segments == 0:
        return
    ybands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
    xbands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
    for r in nodes.values():
        ybands[(r.y, r.y2)].append((r.x, r.x2))
        xbands[(r.x, r.x2)].append((r.y, r.y2))
    horiz = t.is_horizontal
    hit = np.zeros(t.num_segments, dtype=bool)
    for is_h, bands in ((True, ybands), (False, xbands)):
        si = np.flatnonzero(horiz if is_h else ~horiz)
        if not si.size:
            continue
        fix = (t.y1 if is_h else t.x1)[si]
        lo = (t.x1 if is_h else t.y1)[si]
        hi = (t.x2 if is_h else t.y2)[si]
        hit[si] = _BandIndex(bands).hits(fix, lo, hi)
    count = int(hit.sum())
    if not count:
        return
    w_of = t.wire_of

    def msgs():
        for i in np.flatnonzero(hit).tolist():
            net = t.nets[int(w_of[i])]
            if horiz[i]:
                yield (
                    f"wire {net}: H segment y={int(t.y1[i])} "
                    f"x[{int(t.x1[i])},{int(t.x2[i])}] crosses a node interior"
                )
            else:
                yield (
                    f"wire {net}: V segment x={int(t.x1[i])} "
                    f"y[{int(t.y1[i])},{int(t.y2[i])}] crosses a node interior"
                )

    _bulk(rep, count, msgs())


def validate_table(
    table,
    nodes,
    model,
    graph: Optional[Graph] = None,
    check_nodes: bool = True,
    check_vias: bool = True,
    backend=None,
) -> ValidationReport:
    """Vectorized rule set over a :class:`WireTable` (same checks, same
    verdicts as :func:`validate_layout_legacy`)."""
    be = get_backend(backend)
    rep = ValidationReport(ok=True)
    _vt_layer_discipline(table, model, rep)
    _vt_contiguity_terminals(table, nodes, rep)
    _vt_track_overlaps(table, rep, be=be)
    if check_vias:
        rep.checks_run.append("via-conflicts")
        cols = _vt_columns(table)
        _vt_via_col_conflicts(table, *cols, rep, be=be)
        _vt_via_seg_conflicts(table, *cols, rep, be=be)
        _vt_terminals_distinct(table, rep)
    if check_nodes:
        _vt_nodes_disjoint(nodes, rep, be=be)
        _vt_wires_avoid_nodes(table, nodes, rep)
    if graph is not None:
        _check_realizes_graph(table.nets, set(nodes), graph, rep)
    return rep


def validate_layout(
    layout: Layout,
    graph: Optional[Graph] = None,
    check_nodes: bool = True,
    check_vias: bool = True,
    backend=None,
) -> ValidationReport:
    """Run the full rule set; returns a report (``.raise_if_failed()`` to
    assert).  Vectorized: operates on the layout's wire table (native for
    table-built layouts, converted once otherwise)."""
    return validate_table(
        layout.wire_table(),
        layout.nodes,
        layout.model,
        graph=graph,
        check_nodes=check_nodes,
        check_vias=check_vias,
        backend=backend,
    )
