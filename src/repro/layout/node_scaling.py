"""Heterogeneous node sizes: the paper's W' claim (Sections 3.3, 4.2).

"We can also let each of ``O(R) = O(N/log N)`` nodes occupy a square of
side ``W'`` for any ``W' = o(sqrt(N/log N))`` and each of the remaining
``N - o(N)`` nodes occupy a square of side ``W = o(sqrt(N)/log N)``,
without affecting the leading constants.  The latter is particularly
useful for butterfly networks with processors and memory banks at the
first and/or last stages."

The big nodes are the ``2R`` input/output-stage nodes.  Geometrically
they form one column strip per block; a strip of ``2**k1`` side-``W'``
squares is ``2**k1 (W' + 1)`` tall, and it fits inside the grid *cell*
(block plus its channel) as long as ``W'`` stays below roughly
``chan_h / 2**k1 ~ 2**(k2+1)/L`` — so realising the paper's full
``o(sqrt(N/log N))`` headroom requires the *asymmetric* parameter
choice that enlarges ``k2``/``k3`` (trading grid shape for strip
height), exactly the "appropriately selecting parameters" remark.

This module models the dimension arithmetic (the paper gives no
construction detail for this claim; we document it as a model, not a
wire-level build) and exposes the thresholds, so the bench can show the
area knee sitting at the predicted ``W'`` for both balanced and
asymmetric parameter vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..analysis.formulas import num_nodes
from .grid_scheme import GridDims, grid_dims

__all__ = ["HeteroDims", "hetero_io_dims", "io_node_threshold", "paper_io_threshold"]


@dataclass(frozen=True)
class HeteroDims:
    """Grid dimensions with enlarged input/output-stage nodes."""

    base: GridDims
    W_io: int
    cell_w: int
    cell_h: int

    @property
    def width(self) -> int:
        return self.base.grid_cols * self.cell_w

    @property
    def height(self) -> int:
        return self.base.grid_rows * self.cell_h

    @property
    def area(self) -> int:
        return self.width * self.height


def hetero_io_dims(
    ks: Sequence[int], W_io: int, W: int = 4, L: int = 2
) -> HeteroDims:
    """Dimensions when the stage-0 and stage-n nodes have side ``W_io``.

    The two I/O columns of every block widen the cell by
    ``2 (W_io - W)``; the I/O strips stack vertically within the cell,
    so the cell height becomes ``max(normal, 2**k1 (W_io + 1) + 2)``.
    """
    base = grid_dims(ks, W=W, L=L)
    if W_io < W:
        raise ValueError(f"W_io must be >= W = {W}, got {W_io}")
    k1 = ks[0]
    strip_h = (1 << k1) * (W_io + 1) + 2
    return HeteroDims(
        base=base,
        W_io=W_io,
        cell_w=base.cell_w + 2 * (W_io - W),
        cell_h=max(base.cell_h, strip_h),
    )


def io_node_threshold(ks: Sequence[int], W: int = 4, L: int = 2) -> float:
    """The construction's own knee: the ``W_io`` at which the I/O strip
    height reaches the normal cell height, ``~ cell_h / 2**k1 - 1``."""
    base = grid_dims(ks, W=W, L=L)
    return base.cell_h / (1 << ks[0]) - 1


def paper_io_threshold(n: int, L: int = 2) -> float:
    """The paper's asymptotic headroom for I/O nodes:
    ``sqrt(N / log N) / (L / 2)`` up to constants — we report
    ``sqrt(N/log2 N)`` scaled by ``2/L`` for comparison tables."""
    N = num_nodes(n)
    return math.sqrt(N / math.log2(N)) * 2 / L
