"""Pareto frontier over a campaign's completed points.

The paper's design question is a trade — chip area against total wire
length against pins per module against wiring layers — so the campaign's
headline artifact is the set of grid points no other point beats on
*every* axis at once.  All four objectives are minimized:

``area``
    layout bounding-box area (layout stage).
``total_wire_length``
    summed wire length (layout stage).
``pins``
    best exact pins/module across partition schemes (package stage).
``layers``
    wiring layers L (the point's own axis value).

Only points whose layout validated and whose package stage completed
are eligible; failed or skipped points are counted but never ranked.
The frontier is emitted as deterministic JSON (stable sort: objective
tuple, then point id) plus a rendered table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.comparison import format_table

__all__ = ["OBJECTIVES", "pareto_frontier", "render_frontier"]

OBJECTIVES = ("area", "total_wire_length", "pins", "layers")


def _objectives(point_entry: Dict) -> Optional[Dict[str, int]]:
    """The point's objective vector, or ``None`` if ineligible."""
    stages = point_entry.get("stages", {})
    layout = stages.get("layout", {})
    package = stages.get("package", {})
    if layout.get("status") != "ok" or package.get("status") != "ok":
        return None
    lsum, psum = layout.get("summary") or {}, package.get("summary") or {}
    if not lsum.get("valid"):
        return None
    return {
        "area": int(lsum["area"]),
        "total_wire_length": int(lsum["total_wire_length"]),
        "pins": int(psum["pins"]),
        "layers": int(lsum["layers"]),
    }


def _dominates(a: Dict[str, int], b: Dict[str, int]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere (all objectives minimized)."""
    no_worse = all(a[k] <= b[k] for k in OBJECTIVES)
    better = any(a[k] < b[k] for k in OBJECTIVES)
    return no_worse and better


def pareto_frontier(manifest: Dict) -> Dict:
    """The frontier document for a run manifest (see module docstring)."""
    candidates: List[Dict] = []
    skipped = 0
    for entry in manifest.get("points", []):
        obj = _objectives(entry)
        if obj is None:
            skipped += 1
            continue
        candidates.append(
            {
                "id": entry["id"],
                "ks": entry["params"]["ks"],
                "n": entry["params"]["n"],
                "rate": entry["params"]["rate"],
                "pin_limit": entry["params"]["pin_limit"],
                **obj,
            }
        )
    frontier = [
        c for c in candidates
        if not any(_dominates(o, c) for o in candidates if o is not c)
    ]
    frontier.sort(
        key=lambda c: tuple(c[k] for k in OBJECTIVES) + (c["id"],)
    )
    return {
        "objectives": list(OBJECTIVES),
        "points": frontier,
        "considered": len(candidates),
        "dominated": len(candidates) - len(frontier),
        "ineligible": skipped,
    }


def render_frontier(frontier: Dict) -> str:
    """Human-readable frontier table (plus the coverage counts)."""
    rows = [
        {
            "point": c["id"],
            "ks": tuple(c["ks"]),
            "n": c["n"],
            "area": c["area"],
            "wire len": c["total_wire_length"],
            "pins": c["pins"],
            "layers": c["layers"],
        }
        for c in frontier["points"]
    ]
    table = format_table(rows) if rows else "(empty frontier)"
    return (
        f"{table}\n"
        f"{len(frontier['points'])} frontier point(s) of "
        f"{frontier['considered']} considered "
        f"({frontier['dominated']} dominated, "
        f"{frontier['ineligible']} ineligible)\n"
    )
