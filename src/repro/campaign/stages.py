"""Per-point stage pipeline: layout -> validate -> package -> benes -> saturation.

Each stage answers through the :mod:`repro.service` handler layer, so a
campaign's artifacts *are* cache entries — rerunning a grid whose points
were ever computed (by a campaign, the CLI or the HTTP service) serves
them back byte-identically instead of recomputing.

Every stage emits one JSON-native *stage record* carrying:

``status``
    ``ok`` / ``failed`` / ``skipped`` (skipped = out of the stage's
    bounds, e.g. the saturation bisection above ``sat_max_n``).
``summary``
    the headline metrics the run manifest and the Pareto frontier read.
``result``
    the full service result(s), checkpoint-grade: a resumed run loads
    this instead of recomputing.
``proof``
    the verify-gate record — the CLI-equivalent ``argv``, the stage's
    ``rc``, and one entry per service query with its cache key and the
    validated ``result_sha256`` (re-read from the artifact store and
    re-digested, so the proof attests what is actually on disk).

Records contain **no timestamps, paths or cache dispositions** — a
resumed run must reproduce them byte-for-byte.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..service.handlers import QueryError, normalize_params, query
from ..service.store import ArtifactStore, cache_key, canonical_json
from .grid import CampaignPoint, derive_seed

__all__ = ["STAGES", "STAGE_SCHEMA_VERSION", "run_stage", "stage_argv"]

#: Stage order; later stages may read earlier records (``validate``
#: gates on ``layout``) but never mutate them.
STAGES: Tuple[str, ...] = ("layout", "validate", "package", "benes", "saturation")

#: Bump when the stage-record layout changes; resumed runs discard
#: records from other versions and recompute.
STAGE_SCHEMA_VERSION = 1


def _digest(result: Dict) -> str:
    return hashlib.sha256(canonical_json(result)).hexdigest()


def _layout_params(point: CampaignPoint, config: Dict) -> Dict[str, object]:
    return {
        "ks": list(point.ks),
        "layers": point.layers,
        "node_side": config["node_side"],
        "track_order": config["track_order"],
    }


def stage_argv(
    stage: str, point: CampaignPoint, config: Dict[str, object]
) -> List[str]:
    """The CLI invocation that reproduces the stage's primary query."""
    ks = ",".join(str(k) for k in point.ks)
    if stage in ("layout", "validate"):
        return [
            "repro", "layout", "--ks", ks,
            "--layers", str(point.layers),
            "--node-side", str(config["node_side"]),
            "--track-order", str(config["track_order"]),
        ]
    if stage == "package":
        return ["repro", "package", "--ks", ks, "--scheme", "all"]
    if stage == "benes":
        seed = derive_seed(config["seed"], "benes", list(point.ks))
        return [
            "repro", "benes", "-n", str(point.n),
            "--batch", str(config["benes_batch"]), "--seed", str(seed),
        ]
    if stage == "saturation":
        seed = derive_seed(config["seed"], "sim", list(point.ks), point.rate)
        return [
            "repro", "sim", "-n", str(point.n),
            "--rate", str(point.rate),
            "--cycles", str(config["cycles"]), "--seed", str(seed),
        ]
    raise ValueError(f"unknown stage {stage!r}")


def _exec_params(config: Dict[str, object]) -> Optional[Dict[str, object]]:
    """The layout stage's execution knobs from campaign config, or
    ``None`` when both are unset (the monolithic path).  These never
    enter cache keys, proofs or argv — they change how the answer is
    computed, not the answer."""
    ex = {}
    if config.get("layout_memory_budget") is not None:
        ex["memory_budget_bytes"] = config["layout_memory_budget"]
    if config.get("layout_workers") is not None:
        ex["workers"] = config["layout_workers"]
    return ex or None


def _query_with_proof(
    kind: str,
    params: Dict[str, object],
    store: Optional[ArtifactStore],
    use_cache: bool,
    exec_params: Optional[Dict[str, object]] = None,
) -> Tuple[Dict, Dict]:
    """Run one service query and attest it: the returned proof entry
    records the cache key and the digest of the result, with
    ``verified`` true only when re-reading the artifact store yields the
    same bytes (the verify-gate's "validated result digest")."""
    result = query(kind, params, store=store, use_cache=use_cache,
                   exec_params=exec_params)
    digest = _digest(result)
    entry: Dict[str, object] = {
        "kind": kind,
        "key": normalize_key(kind, params),
        "result_sha256": digest,
    }
    if store is not None and use_cache:
        again = store.get(kind, normalize_params(kind, params))
        entry["verified"] = again is not None and _digest(again) == digest
    else:
        entry["verified"] = True  # nothing on disk to cross-check
    return result, entry


def normalize_key(kind: str, params: Dict[str, object]) -> str:
    return cache_key(kind, normalize_params(kind, params))


def _record(
    stage: str,
    point: CampaignPoint,
    argv: List[str],
    *,
    status: str,
    rc: int,
    summary: Optional[Dict] = None,
    result: Optional[Dict] = None,
    queries: Optional[List[Dict]] = None,
    error: Optional[str] = None,
) -> Dict:
    return {
        "schema": STAGE_SCHEMA_VERSION,
        "stage": stage,
        "point": point.params(),
        "status": status,
        "summary": summary,
        "result": result,
        "error": error,
        "proof": {"argv": argv, "rc": rc, "queries": queries or []},
    }


def run_stage(
    stage: str,
    point: CampaignPoint,
    config: Dict[str, object],
    store: Optional[ArtifactStore] = None,
    use_cache: bool = True,
    prior: Optional[Dict[str, Dict]] = None,
) -> Dict:
    """Execute one stage for one point and return its stage record.

    ``prior`` maps already-completed stage names to their records
    (``validate`` reads ``layout``'s).  Engine rejections surface as
    ``status: failed`` records with the error text — deterministic, so
    failed points checkpoint and resume like successful ones.
    """
    prior = prior or {}
    argv = stage_argv(stage, point, config)
    try:
        if stage == "layout":
            result, q = _query_with_proof(
                "layout", _layout_params(point, config), store, use_cache,
                exec_params=_exec_params(config),
            )
            s = result["summary"]
            summary = {
                "valid": bool(result["valid"]),
                "area": s["area"],
                "total_wire_length": s["total_wire_length"],
                "layers": s["layers"],
                "wires": s["wires"],
                "vias": s["vias"],
            }
            return _record(stage, point, argv, status="ok", rc=0,
                           summary=summary, result=result, queries=[q])

        if stage == "validate":
            lrec = prior.get("layout")
            if lrec is None or lrec["status"] != "ok":
                return _record(stage, point, argv, status="skipped", rc=0,
                               error="layout stage did not complete")
            valid = bool(lrec["summary"]["valid"])
            lparams = normalize_params(
                "layout", _layout_params(point, config)
            )
            if store is not None and use_cache:
                again = store.get("layout", lparams)
                artifact_ok = (
                    again is not None
                    and _digest(again)
                    == lrec["proof"]["queries"][0]["result_sha256"]
                    and store.load_arrays("layout", lparams) is not None
                )
            else:
                artifact_ok = True  # nothing persisted to re-verify
            rc = 0 if valid and artifact_ok else 1
            q = {
                "kind": "layout",
                "key": normalize_key("layout", lparams),
                "result_sha256": lrec["proof"]["queries"][0]["result_sha256"],
                "verified": artifact_ok,
            }
            return _record(
                stage, point, argv,
                status="ok" if rc == 0 else "failed", rc=rc,
                summary={"valid": valid, "artifact_verified": artifact_ok},
                queries=[q],
            )

        if stage == "package":
            result, q = _query_with_proof(
                "package",
                {"ks": list(point.ks), "scheme": "all",
                 "rows_per_module": None},
                store, use_cache,
            )
            best = min(result["schemes"], key=lambda r: r["pins exact"])
            pins = int(best["pins exact"])
            feasible = point.pin_limit is None or pins <= point.pin_limit
            summary = {
                "pins": pins,
                "scheme": best["scheme"],
                "pin_limit": point.pin_limit,
                "feasible": feasible,
                "all_match": bool(result["all_match"]),
            }
            rc = 0 if result["all_match"] else 1
            return _record(
                stage, point, argv,
                status="ok" if rc == 0 else "failed", rc=rc,
                summary=summary, result=result, queries=[q],
            )

        if stage == "benes":
            if point.n > 16:
                return _record(stage, point, argv, status="skipped", rc=0,
                               error=f"n={point.n} above benes service cap")
            seed = derive_seed(config["seed"], "benes", list(point.ks))
            result, q = _query_with_proof(
                "benes",
                {"n": point.n, "batch": config["benes_batch"], "seed": seed},
                store, use_cache,
            )
            rc = 0 if result["realized_ok"] else 1
            summary = {
                "realized_ok": bool(result["realized_ok"]),
                "mean_crossed": result["crossed"]["mean"],
                "batch": config["benes_batch"],
            }
            return _record(
                stage, point, argv,
                status="ok" if rc == 0 else "failed", rc=rc,
                summary=summary, result=result, queries=[q],
            )

        if stage == "saturation":
            if point.n > 12:
                return _record(stage, point, argv, status="skipped", rc=0,
                               error=f"n={point.n} above sim service cap")
            seed = derive_seed(config["seed"], "sim", list(point.ks), point.rate)
            sim, q_sim = _query_with_proof(
                "sim",
                {"n": point.n, "rate": point.rate,
                 "cycles": config["cycles"], "warmup": config["warmup"],
                 "seed": seed},
                store, use_cache,
            )
            queries = [q_sim]
            results: Dict[str, Dict] = {"sim": sim}
            sat_rate = None
            if point.n <= config["sat_max_n"]:
                sat_seed = derive_seed(config["seed"], "saturation",
                                       list(point.ks))
                sat, q_sat = _query_with_proof(
                    "saturation",
                    {"n": point.n, "cycles": config["cycles"],
                     "threshold": config["threshold"], "seed": sat_seed},
                    store, use_cache,
                )
                queries.append(q_sat)
                results["saturation"] = sat
                sat_rate = sat["rate_per_node"]
            summary = {
                "rate": point.rate,
                "accepted_fraction": sim["accepted_fraction"],
                "throughput_per_input": sim["throughput_per_input"],
                "saturation_rate": sat_rate,
            }
            return _record(stage, point, argv, status="ok", rc=0,
                           summary=summary, result=results, queries=queries)

        raise ValueError(f"unknown stage {stage!r}")
    except QueryError as e:
        # same params -> same engine error text: failures checkpoint and
        # resume deterministically like results do
        return _record(stage, point, argv, status="failed", rc=2,
                       error=str(e))
