"""Parameter-grid declaration and expansion for ``repro campaign``.

A *grid* is the JSON document (or the equivalent CLI flags) declaring
the design space one campaign sweeps — the paper's headline tables are
exactly such sweeps over ``(n, k1..kl, L, pin-limit, injection-rate)``.
Schema::

    {
      "ks":        [[2, 2], [1, 1, 1]],   # required axis: parameter vectors
      "layers":    [2],                   # wiring layers L (default [2])
      "pin_limit": [64],                  # pins/module cap, null = none
      "rate":      [0.8],                 # per-input injection rate
      "config": {                         # per-run knobs, not axes
        "node_side": 4,       # layout node square side W
        "track_order": "forward",
        "cycles": 600,        # simulated cycles (sim + saturation)
        "warmup": 100,        # sim warmup cycles
        "benes_batch": 8,     # permutations routed per point
        "sat_max_n": 6,       # run the saturation bisection only if n <= this
        "threshold": 0.95,    # saturation accepted-fraction threshold
        "seed": 0             # campaign base seed (per-point seeds derive)
      }
    }

Points are the cross product of the four axes, expanded in a *stable*
order (``ks`` outermost, then ``layers``, ``pin_limit``, ``rate``) so
point ids, derived seeds and manifests are identical across runs,
resumes and worker counts.  Everything downstream — stage records,
manifests, the Pareto frontier — is keyed by this expansion.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..service.store import canonical_json

__all__ = [
    "CampaignPoint",
    "GridError",
    "CONFIG_DEFAULTS",
    "EXEC_CONFIG_KEYS",
    "normalize_grid",
    "expand_points",
    "spec_digest",
    "derive_seed",
]


class GridError(ValueError):
    """Malformed campaign grid specification."""


#: Run-level knobs (not axes); all overridable via ``config``.
CONFIG_DEFAULTS: Dict[str, object] = {
    "node_side": 4,
    "track_order": "forward",
    "cycles": 600,
    "warmup": 100,
    "benes_batch": 8,
    "sat_max_n": 6,
    "threshold": 0.95,
    "seed": 0,
    "layout_memory_budget": None,
    "layout_workers": None,
}

#: Execution knobs: they change *how* the layout stage computes (chunked
#: out-of-core build, parallel workers), never *what* it computes — the
#: stage output bytes are identical with or without them.  They are
#: therefore stripped from :func:`spec_digest`, so run ids, derived
#: seeds and proofs from runs predating these knobs stay valid.
EXEC_CONFIG_KEYS = ("layout_memory_budget", "layout_workers")

_AXES = ("ks", "layers", "pin_limit", "rate")


def _as_int(v: object, what: str) -> int:
    if isinstance(v, bool) or not isinstance(v, int):
        raise GridError(f"{what} must be an integer, got {v!r}")
    return v


def _norm_ks_axis(raw: object) -> List[List[int]]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise GridError("grid 'ks' must be a non-empty list of k-vectors")
    out: List[List[int]] = []
    for ks in raw:
        if not isinstance(ks, (list, tuple)) or not ks:
            raise GridError(f"each ks entry must be a non-empty list, got {ks!r}")
        vec = [_as_int(k, "ks entry") for k in ks]
        if any(k < 1 for k in vec):
            raise GridError(f"ks entries must be >= 1, got {vec}")
        if sum(vec) > 24:
            raise GridError(f"sum(ks) capped at 24 per point, got {sum(vec)}")
        out.append(vec)
    return out


def _norm_layers_axis(raw: object) -> List[int]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise GridError("grid 'layers' must be a non-empty list")
    out = [_as_int(v, "layers") for v in raw]
    if any(not 2 <= v <= 64 for v in out):
        raise GridError(f"layers must be in [2, 64], got {out}")
    return out


def _norm_pin_axis(raw: object) -> List[Optional[int]]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise GridError("grid 'pin_limit' must be a non-empty list")
    out: List[Optional[int]] = []
    for v in raw:
        if v is None:
            out.append(None)
            continue
        i = _as_int(v, "pin_limit")
        if i < 1:
            raise GridError(f"pin_limit must be >= 1 or null, got {i}")
        out.append(i)
    return out


def _norm_rate_axis(raw: object) -> List[float]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise GridError("grid 'rate' must be a non-empty list")
    out: List[float] = []
    for v in raw:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise GridError(f"rate must be a number, got {v!r}")
        f = float(v)
        if not 0.0 < f <= 1.0:
            raise GridError(f"rate must be in (0, 1], got {f}")
        out.append(f)
    return out


def normalize_grid(spec: Dict[str, object]) -> Dict[str, object]:
    """Validated grid with axis defaults and config defaults filled.

    The returned dict is the *canonical* spec: it is what gets digested,
    written to ``campaign.json`` and embedded in the manifest, so two
    spellings of the same grid produce identical run trees.
    """
    if not isinstance(spec, dict):
        raise GridError(f"grid must be an object, got {type(spec).__name__}")
    unknown = set(spec) - set(_AXES) - {"config"}
    if unknown:
        raise GridError(f"unknown grid key(s): {sorted(unknown)}")
    if "ks" not in spec:
        raise GridError("grid requires a 'ks' axis")
    grid: Dict[str, object] = {
        "ks": _norm_ks_axis(spec["ks"]),
        "layers": _norm_layers_axis(spec.get("layers", [2])),
        "pin_limit": _norm_pin_axis(spec.get("pin_limit", [None])),
        "rate": _norm_rate_axis(spec.get("rate", [0.8])),
    }
    raw_cfg = spec.get("config", {})
    if not isinstance(raw_cfg, dict):
        raise GridError("grid 'config' must be an object")
    unknown = set(raw_cfg) - set(CONFIG_DEFAULTS)
    if unknown:
        raise GridError(f"unknown config key(s): {sorted(unknown)}")
    cfg = dict(CONFIG_DEFAULTS)
    cfg.update(raw_cfg)
    if cfg["track_order"] not in ("forward", "reversed"):
        raise GridError(f"bad track_order {cfg['track_order']!r}")
    for k in ("node_side", "cycles", "warmup", "benes_batch", "sat_max_n", "seed"):
        cfg[k] = _as_int(cfg[k], f"config.{k}")
    cfg["threshold"] = float(cfg["threshold"])
    for k in EXEC_CONFIG_KEYS:
        if cfg[k] is not None:
            v = _as_int(cfg[k], f"config.{k}")
            if v < 1:
                raise GridError(
                    f"config.{k} must be a positive integer or null, got {v}"
                )
            cfg[k] = v
    grid["config"] = cfg
    return grid


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded grid point — a single design to push through all
    stages.  ``index`` is the stable expansion position; ``point_id``
    (``p<index>``) names the point's directory in the run tree."""

    index: int
    ks: Tuple[int, ...]
    layers: int
    pin_limit: Optional[int]
    rate: float

    @property
    def point_id(self) -> str:
        return f"p{self.index:04d}"

    @property
    def n(self) -> int:
        return sum(self.ks)

    def params(self) -> Dict[str, object]:
        """JSON-native identity of the point (manifest / proof form)."""
        return {
            "ks": list(self.ks),
            "layers": self.layers,
            "pin_limit": self.pin_limit,
            "rate": self.rate,
            "n": self.n,
        }


def expand_points(grid: Dict[str, object]) -> List[CampaignPoint]:
    """The grid's cross product in stable order (``ks`` outermost)."""
    points: List[CampaignPoint] = []
    for ks in grid["ks"]:
        for layers in grid["layers"]:
            for pin_limit in grid["pin_limit"]:
                for rate in grid["rate"]:
                    points.append(
                        CampaignPoint(
                            index=len(points),
                            ks=tuple(ks),
                            layers=layers,
                            pin_limit=pin_limit,
                            rate=rate,
                        )
                    )
    return points


def spec_digest(grid: Dict[str, object]) -> str:
    """Short content digest of a normalized grid (run-id material).

    Execution knobs (:data:`EXEC_CONFIG_KEYS`) are excluded: the same
    design grid digests the same whether it runs monolithic, chunked or
    parallel, so resumes may change them freely mid-campaign.
    """
    g = dict(grid)
    cfg = g.get("config")
    if isinstance(cfg, dict):
        g["config"] = {
            k: v for k, v in cfg.items() if k not in EXEC_CONFIG_KEYS
        }
    return hashlib.sha256(canonical_json(g)).hexdigest()[:12]


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic per-point seed: hash of ``(base_seed, *parts)``.

    Derived from the point's *identity*, never its execution order, so
    seeds survive regridding, resumes and worker sharding unchanged.
    """
    digest = hashlib.sha256(canonical_json([base_seed, list(parts)])).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)
