"""Checkpointed campaign execution: run trees, sharding, resume.

One campaign is one *run tree*::

    runs/<run_id>/
      campaign.json                  # the normalized grid (written once)
      cache/                         # ArtifactStore (unless --cache-dir)
      points/<point_id>/
        point.json                   # the point's identity
        stages/<stage>.json          # sealed stage records (checkpoints)
      manifest.json                  # assembled from the stage records
      frontier.json                  # Pareto frontier document
      frontier.txt                   # rendered frontier table

Every file is written atomically (temp + ``os.replace``) and every
stage record is *sealed* with a content digest, so an interrupted run
leaves either a complete, verifiable checkpoint or detectable garbage —
``resume`` re-runs exactly the stages whose records are missing or fail
their seal, and nothing else.  Records, manifests and frontiers carry
no timestamps, hostnames or paths: an interrupted-and-resumed run
produces **byte-identical** ``manifest.json`` / ``frontier.json`` to an
uninterrupted one, whatever the worker count.

Sharding: points are independent, so incomplete points fan out across a
:mod:`multiprocessing` pool.  Workers share the artifact store (its
single-flight locks serialize duplicate computes) and write only inside
their own point directory; the parent assembles the manifest from disk
afterwards, in stable point order.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

from ..service.store import ArtifactStore, canonical_json
from .frontier import pareto_frontier, render_frontier
from .grid import expand_points, normalize_grid, spec_digest
from .stages import STAGE_SCHEMA_VERSION, STAGES, run_stage

__all__ = [
    "CampaignError",
    "RUN_SCHEMA_VERSION",
    "start_run",
    "resume_run",
    "run_status",
    "build_manifest",
    "load_run",
    "write_json_atomic",
]

RUN_SCHEMA_VERSION = 1

_CAMPAIGN = "campaign.json"
_MANIFEST = "manifest.json"
_FRONTIER = "frontier.json"
_FRONTIER_TXT = "frontier.txt"


class CampaignError(RuntimeError):
    """Unusable run tree or conflicting run request."""


# ----------------------------------------------------------------------
# deterministic atomic JSON
# ----------------------------------------------------------------------

def _json_bytes(obj: object) -> bytes:
    """Stable on-disk JSON: sorted keys, fixed indent, trailing newline."""
    return (json.dumps(obj, indent=1, sort_keys=True) + "\n").encode("utf-8")


def write_json_atomic(path: str, obj: object) -> None:
    """Write ``obj`` as JSON via a same-directory temp + ``os.replace``
    so readers (and crashes) never observe a torn file."""
    d = os.path.dirname(path)
    os.makedirs(d, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=d)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_json_bytes(obj))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _load_json(path: str) -> Optional[Dict]:
    try:
        with open(path, "rb") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError,
            OSError):
        return None


# ----------------------------------------------------------------------
# sealed stage records
# ----------------------------------------------------------------------

def _seal(record: Dict) -> Dict:
    body = {k: v for k, v in record.items() if k != "record_sha256"}
    record["record_sha256"] = hashlib.sha256(canonical_json(body)).hexdigest()
    return record


def _load_stage_record(path: str) -> Optional[Dict]:
    """A stage record, or ``None`` if missing, truncated, tampered or
    from another schema version — any of which means 'recompute'."""
    rec = _load_json(path)
    if not isinstance(rec, dict) or rec.get("schema") != STAGE_SCHEMA_VERSION:
        return None
    seal = rec.get("record_sha256")
    body = {k: v for k, v in rec.items() if k != "record_sha256"}
    if seal != hashlib.sha256(canonical_json(body)).hexdigest():
        return None
    return rec


# ----------------------------------------------------------------------
# run-tree paths
# ----------------------------------------------------------------------

def _point_dir(run_dir: str, point_id: str) -> str:
    return os.path.join(run_dir, "points", point_id)


def _stage_path(run_dir: str, point_id: str, stage: str) -> str:
    return os.path.join(_point_dir(run_dir, point_id), "stages",
                        f"{stage}.json")


def _store_for(run_dir: str, cache_dir: Optional[str],
               use_cache: bool) -> Optional[ArtifactStore]:
    if not use_cache:
        return None
    return ArtifactStore(cache_dir or os.path.join(run_dir, "cache"))


# ----------------------------------------------------------------------
# point execution (worker side)
# ----------------------------------------------------------------------

def _run_point(args: Tuple) -> Tuple[str, int, Dict[str, str]]:
    """Run every missing stage of one point; returns ``(point_id,
    stages_executed, {stage: status})``.  Module-level so pool workers
    pickle it; everything needed is re-derived from the grid."""
    run_dir, grid, index, cache_dir, use_cache = args
    point = expand_points(grid)[index]
    config = grid["config"]
    store = _store_for(run_dir, cache_dir, use_cache)
    pdir = _point_dir(run_dir, point.point_id)
    point_json = os.path.join(pdir, "point.json")
    if _load_json(point_json) is None:
        write_json_atomic(point_json, point.params())
    executed = 0
    statuses: Dict[str, str] = {}
    prior: Dict[str, Dict] = {}
    for stage in STAGES:
        path = _stage_path(run_dir, point.point_id, stage)
        rec = _load_stage_record(path)
        if rec is None:
            rec = _seal(run_stage(stage, point, config, store=store,
                                  use_cache=use_cache, prior=prior))
            write_json_atomic(path, rec)
            executed += 1
        prior[stage] = rec
        statuses[stage] = rec["status"]
    return point.point_id, executed, statuses


def _point_complete(run_dir: str, point_id: str) -> bool:
    return all(
        _load_stage_record(_stage_path(run_dir, point_id, stage)) is not None
        for stage in STAGES
    )


# ----------------------------------------------------------------------
# manifest / frontier assembly (parent side)
# ----------------------------------------------------------------------

def build_manifest(run_dir: str, grid: Dict, run_id: str) -> Dict:
    """Assemble the run manifest purely from on-disk stage records, in
    stable point order — execution order and worker count leave no
    trace, which is what makes resumes byte-identical."""
    points_out: List[Dict] = []
    counts = {"points": 0, "complete": 0, "failed": 0}
    stage_counts = {s: {"ok": 0, "failed": 0, "skipped": 0, "pending": 0}
                    for s in STAGES}
    for point in expand_points(grid):
        counts["points"] += 1
        stages_out: Dict[str, Dict] = {}
        complete, failed = True, False
        for stage in STAGES:
            rec = _load_stage_record(
                _stage_path(run_dir, point.point_id, stage)
            )
            if rec is None:
                complete = False
                stage_counts[stage]["pending"] += 1
                continue
            status = rec["status"]
            stage_counts[stage][status] += 1
            failed |= status == "failed"
            stages_out[stage] = {
                "status": status,
                "rc": rec["proof"]["rc"],
                "argv": rec["proof"]["argv"],
                "queries": rec["proof"]["queries"],
                "summary": rec["summary"],
                "error": rec["error"],
            }
        counts["complete"] += complete
        counts["failed"] += failed
        points_out.append(
            {
                "id": point.point_id,
                "params": point.params(),
                "complete": complete,
                "stages": stages_out,
            }
        )
    return {
        "run_schema": RUN_SCHEMA_VERSION,
        "run_id": run_id,
        "spec_digest": spec_digest(grid),
        "grid": grid,
        "stage_order": list(STAGES),
        "counts": counts,
        "stage_counts": stage_counts,
        "points": points_out,
    }


def _write_outputs(run_dir: str, manifest: Dict) -> Dict:
    frontier = pareto_frontier(manifest)
    write_json_atomic(os.path.join(run_dir, _MANIFEST), manifest)
    write_json_atomic(os.path.join(run_dir, _FRONTIER), frontier)
    txt = os.path.join(run_dir, _FRONTIER_TXT)
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=run_dir)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(render_frontier(frontier))
        os.replace(tmp, txt)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return frontier


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------

def load_run(run_dir: str) -> Tuple[Dict, str]:
    """The run's normalized grid and run id, from ``campaign.json``."""
    doc = _load_json(os.path.join(run_dir, _CAMPAIGN))
    if doc is None:
        raise CampaignError(f"no campaign.json under {run_dir}")
    if doc.get("run_schema") != RUN_SCHEMA_VERSION:
        raise CampaignError(
            f"run schema {doc.get('run_schema')} != {RUN_SCHEMA_VERSION}"
        )
    grid = normalize_grid(doc["grid"])
    if spec_digest(grid) != doc["spec_digest"]:
        raise CampaignError("campaign.json spec digest mismatch")
    return grid, doc["run_id"]


def _execute(
    run_dir: str,
    grid: Dict,
    run_id: str,
    cache_dir: Optional[str],
    use_cache: bool,
    workers: Optional[int],
    log: Optional[Callable[[str], None]],
) -> Dict:
    points = expand_points(grid)
    todo = [p for p in points if not _point_complete(run_dir, p.point_id)]
    jobs = [(run_dir, grid, p.index, cache_dir, use_cache) for p in todo]
    executed_points = 0
    stages_run = 0
    if workers and workers > 1 and len(jobs) > 1:
        procs = min(workers, len(jobs))
        with multiprocessing.get_context().Pool(procs) as pool:
            for pid, executed, statuses in pool.imap_unordered(
                _run_point, jobs
            ):
                executed_points += executed > 0
                stages_run += executed
                if log:
                    log(f"  {pid}: {executed} stage(s) run "
                        f"[{' '.join(statuses[s][0] for s in STAGES)}]")
    else:
        for job in jobs:
            pid, executed, statuses = _run_point(job)
            executed_points += executed > 0
            stages_run += executed
            if log:
                log(f"  {pid}: {executed} stage(s) run "
                    f"[{' '.join(statuses[s][0] for s in STAGES)}]")
    manifest = build_manifest(run_dir, grid, run_id)
    frontier = _write_outputs(run_dir, manifest)
    return {
        "run_id": run_id,
        "run_dir": run_dir,
        "points": len(points),
        "resumed_points": len(todo),
        "executed_points": executed_points,
        "stages_run": stages_run,
        "counts": manifest["counts"],
        "frontier_points": len(frontier["points"]),
    }


def start_run(
    spec: Dict,
    runs_dir: str = "runs",
    run_id: Optional[str] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Expand ``spec``, create ``runs/<run_id>/`` and run every stage of
    every point.  Refuses a run directory that already holds a campaign
    — that is what :func:`resume_run` is for."""
    grid = normalize_grid(spec)
    run_id = run_id or f"c{spec_digest(grid)}"
    run_dir = os.path.join(runs_dir, run_id)
    if os.path.exists(os.path.join(run_dir, _CAMPAIGN)):
        raise CampaignError(
            f"run {run_id} already exists under {runs_dir}; "
            f"use 'repro campaign resume'"
        )
    os.makedirs(run_dir, exist_ok=True)
    write_json_atomic(
        os.path.join(run_dir, _CAMPAIGN),
        {
            "run_schema": RUN_SCHEMA_VERSION,
            "run_id": run_id,
            "spec_digest": spec_digest(grid),
            "grid": grid,
        },
    )
    return _execute(run_dir, grid, run_id, cache_dir, use_cache, workers, log)


def resume_run(
    run_dir: str,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Continue an interrupted (or extend a damaged) run: re-runs only
    the stages whose checkpoint records are missing or fail their seal,
    then rebuilds the manifest and frontier."""
    grid, run_id = load_run(run_dir)
    return _execute(run_dir, grid, run_id, cache_dir, use_cache, workers, log)


def run_status(run_dir: str) -> Dict:
    """Per-stage completion summary of a run tree, without executing
    anything (safe on a live run: records are read atomically)."""
    grid, run_id = load_run(run_dir)
    manifest = build_manifest(run_dir, grid, run_id)
    have_outputs = (
        _load_json(os.path.join(run_dir, _MANIFEST)) is not None
        and _load_json(os.path.join(run_dir, _FRONTIER)) is not None
    )
    return {
        "run_id": run_id,
        "run_dir": run_dir,
        "spec_digest": manifest["spec_digest"],
        "counts": manifest["counts"],
        "stage_counts": manifest["stage_counts"],
        "outputs_written": have_outputs,
    }
