"""Checkpointed design-space campaigns over the butterfly layout stack.

``repro campaign`` expands a declared parameter grid into staged jobs
(layout -> validate -> package -> benes -> saturation), shards them
across workers, checkpoints every stage under ``runs/<run_id>/`` and
emits a Pareto frontier (area / wire length / pins / layers).  Resuming
an interrupted run reproduces the manifest and frontier byte-for-byte.
"""

from .frontier import OBJECTIVES, pareto_frontier, render_frontier
from .grid import (
    CONFIG_DEFAULTS,
    CampaignPoint,
    GridError,
    derive_seed,
    expand_points,
    normalize_grid,
    spec_digest,
)
from .orchestrator import (
    RUN_SCHEMA_VERSION,
    CampaignError,
    build_manifest,
    load_run,
    resume_run,
    run_status,
    start_run,
    write_json_atomic,
)
from .stages import STAGE_SCHEMA_VERSION, STAGES, run_stage, stage_argv

__all__ = [
    "CONFIG_DEFAULTS",
    "OBJECTIVES",
    "RUN_SCHEMA_VERSION",
    "STAGES",
    "STAGE_SCHEMA_VERSION",
    "CampaignError",
    "CampaignPoint",
    "GridError",
    "build_manifest",
    "derive_seed",
    "expand_points",
    "load_run",
    "normalize_grid",
    "pareto_frontier",
    "render_frontier",
    "resume_run",
    "run_stage",
    "run_status",
    "spec_digest",
    "stage_argv",
    "start_run",
    "write_json_atomic",
]
