"""repro — reproduction of "VLSI Layout and Packaging of Butterfly
Networks" (Yeh, Parhami, Varvarigos, Lee; SPAA 2000).

The package builds, validates and measures the paper's constructions:

* :mod:`repro.topology` — butterflies, hypercubes, complete graphs, swap
  networks and indirect swap networks (ISNs);
* :mod:`repro.transform` — the ISN -> butterfly transformation
  (swap-butterflies) with automorphism verification;
* :mod:`repro.layout` — wire-level layout engines: optimal collinear
  layouts of complete graphs (Appendix B) and the recursive grid layout
  scheme under the Thompson and multilayer 2-D grid models (Sections 3-4),
  with exact rule validation;
* :mod:`repro.packaging` — partitioning, pin accounting, hierarchical
  packaging and the Section 5.2 board example;
* :mod:`repro.analysis` — every closed form in the paper plus
  measured-vs-formula comparison helpers;
* :mod:`repro.algorithms` — ascend/FFT dataflow verification and routing
  simulation;
* :mod:`repro.viz` — figure regeneration (SVG and text).

Quickstart::

    from repro import build_grid_layout, validate_layout
    res = build_grid_layout((2, 2, 2))       # 6-dimensional butterfly
    validate_layout(res.layout, res.graph).raise_if_failed()
    print(res.layout.summary())
"""

from .analysis import (
    format_table,
    leading_constant_area,
    leading_constant_wire,
    multilayer_area,
    multilayer_max_wire,
    multilayer_volume,
    num_nodes,
    thompson_area,
    thompson_max_wire,
)
from .layout import (
    Layout,
    build_grid_layout,
    collinear_layout,
    grid_dims,
    multilayer_model,
    optimal_track_count,
    thompson_model,
    validate_layout,
)
from .packaging import (
    ChipSpec,
    NucleusPartition,
    RowPartition,
    board_design,
    count_off_module_links,
    optimize_packaging,
    paper_board_example,
)
from .topology import (
    Butterfly,
    Graph,
    ISN,
    SwapNetworkParams,
    butterfly_graph,
    isn_graph,
)
from .transform import SwapButterfly, verify_automorphism

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # topology
    "Graph",
    "Butterfly",
    "butterfly_graph",
    "ISN",
    "isn_graph",
    "SwapNetworkParams",
    # transform
    "SwapButterfly",
    "verify_automorphism",
    # layout
    "Layout",
    "thompson_model",
    "multilayer_model",
    "validate_layout",
    "collinear_layout",
    "optimal_track_count",
    "build_grid_layout",
    "grid_dims",
    # packaging
    "RowPartition",
    "NucleusPartition",
    "count_off_module_links",
    "ChipSpec",
    "board_design",
    "paper_board_example",
    "optimize_packaging",
    # analysis
    "num_nodes",
    "thompson_area",
    "thompson_max_wire",
    "multilayer_area",
    "multilayer_max_wire",
    "multilayer_volume",
    "leading_constant_area",
    "leading_constant_wire",
    "format_table",
]
