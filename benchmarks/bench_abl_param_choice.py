"""ABL-2: ablation — ISN parameter choice under packaging constraints.

Section 2's claim: "by appropriately selecting parameters for the
indirect swap network ... the resultant hierarchical layout can be
adapted to various packaging constraints."  Sweeps pin budgets at n = 12
and reports the optimizer's choices; also exhibits the paper's remark
that tighter module-size limits favor the nucleus variant with larger k1.
Benchmark: the full n = 12 design-space enumeration + scoring.
"""

from repro.analysis.comparison import format_table
from repro.packaging.optimizer import optimize_packaging

from conftest import emit


def test_abl_param_choice(benchmark):
    cands = benchmark(optimize_packaging, 12, None, None, 4)
    assert cands

    rows = []
    for pins, nodes in [(48, None), (64, None), (128, None), (None, 64), (None, 200)]:
        best = optimize_packaging(
            12, max_pins_per_module=pins, max_nodes_per_module=nodes, max_l=4
        )
        top = best[0] if best else None
        rows.append(
            {
                "pin limit": pins,
                "node limit": nodes,
                "best ks": top.ks if top else "-",
                "scheme": top.scheme if top else "-",
                "modules": top.num_modules if top else "-",
                "pins": top.pins_per_module if top else "-",
            }
        )
    # tight node limit -> nucleus scheme (paper's remark)
    tight = optimize_packaging(12, max_nodes_per_module=64)
    assert tight and tight[0].scheme == "nucleus"
    # generous pins -> row partition with large modules
    loose = optimize_packaging(12, max_pins_per_module=1024)
    assert loose[0].scheme == "row"
    emit(
        "ABL-2: parameter adaptation to packaging constraints (n = 12)",
        format_table(rows),
    )
