"""EXT-1: hypercube layouts via the same machinery (conclusion claim).

"We have shown ... that the layouts for butterfly networks and many other
networks, such as hypercubes and k-ary n-cubes, have area, volume, and
maximum wire length that are asymptotically the same."  The 2-D grid
recipe with hypercube channels (congestion ``floor(2^{b+1}/3)``) yields
validated layouts whose area converges to ``(4/9) N^2`` at L = 2 — the
hypercubic-networks companion result [26].  Benchmark: Q_7 build +
validation.
"""

from repro.analysis.comparison import format_table
from repro.layout.hypercube_layout import (
    hypercube_2d_area_estimate,
    hypercube_2d_dims,
    hypercube_2d_layout,
    hypercube_collinear_congestion,
)
from repro.layout.validate import validate_layout

from conftest import emit


def build_and_validate(n):
    res = hypercube_2d_layout(n)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_ext_hypercube_layout(benchmark):
    res = benchmark(build_and_validate, 7)
    assert res.layout.area > 0

    cong_rows = [
        {"b": b, "engine congestion": hypercube_collinear_congestion(b),
         "floor(2^(b+1)/3)": (1 << (b + 1)) // 3}
        for b in range(1, 9)
    ]
    conv_rows = []
    for n in (8, 12, 16, 20, 24, 28):
        d = hypercube_2d_dims(n)
        ratio = d.area / hypercube_2d_area_estimate(n)
        conv_rows.append(
            {"n": n, "N": 1 << n, "area": d.area,
             "(4/9)N^2": int(hypercube_2d_area_estimate(n)),
             "ratio": round(ratio, 4)}
        )
    assert conv_rows[-1]["ratio"] < 1.02
    emit(
        "EXT-1: hypercube 2-D layouts (companion claim; area -> (4/9) N^2)",
        format_table(cong_rows) + "\n\n" + format_table(conv_rows),
    )
