"""EXT-9: CCC and omega networks under the grid philosophy.

Cube-connected cycles (the subject of the paper's reference [7]) and
omega networks (a shuffle-exchange fabric isomorphic to the butterfly)
both lay out with the machinery built here: CCC via hypercube-grid cells
of cycle nodes, omega via the generalised stage-column engine.  All
layouts fully validated; CCC's area follows the bisection-square law
``Theta(4^n) = Theta((N/log N)^2)``.  Benchmark: CCC(5) build +
validation.
"""

from repro.analysis.comparison import format_table
from repro.layout.ccc_layout import ccc_2d_layout
from repro.layout.multistage import build_multistage_layout
from repro.layout.validate import validate_layout
from repro.topology.omega import Omega, destination_tag_route

from conftest import emit


def build_ccc5():
    res = ccc_2d_layout(5)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_ext_ccc_omega(benchmark):
    benchmark(build_ccc5)

    rows = []
    for n in (3, 4, 5, 6):
        res = ccc_2d_layout(n)
        validate_layout(res.layout, res.graph).raise_if_failed()
        s = res.layout.summary()
        rows.append(
            {
                "network": f"CCC({n})",
                "nodes": n << n,
                "area": s["area"],
                "area/4^n": round(s["area"] / 4**n, 2),
                "max wire": s["max_wire_length"],
            }
        )
    # Theta(4^n): the normalised column stabilises
    ratios = [r["area/4^n"] for r in rows]
    assert ratios[-1] < ratios[0]

    om_rows = []
    for n in (3, 4):
        om = Omega(n)
        res = build_multistage_layout(1 << n, om.boundary_link_lists(), name="omega")
        validate_layout(res.layout, res.graph).raise_if_failed()
        # destination-tag routing spot check on the realised graph
        g = res.graph
        for dst in range(1 << n):
            path = destination_tag_route(n, 0, dst)
            for s, (x, y) in enumerate(zip(path, path[1:])):
                assert g.has_edge((x, s), (y, s + 1))
        om_rows.append(
            {
                "network": f"omega({n})",
                "nodes": (n + 1) << n,
                "area": res.layout.area,
                "routes checked": 1 << n,
            }
        )
    emit(
        "EXT-9: CCC and omega layouts (validated; CCC follows Theta(4^n))",
        format_table(rows) + "\n\n" + format_table(om_rows),
    )
