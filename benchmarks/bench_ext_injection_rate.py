"""EXT-7: the injection-rate ceiling, measured dynamically.

Section 2.3: "The maximum injection rate is Theta(1/log R) since the
average distance is O(log R) and the traffic is balanced within a
constant factor."  The queued simulator shows both halves: throughput
tracks offered load all the way to the input-bandwidth wall (balance),
and the per-*node* rate at that wall is ``~ 1/(n+1) = Theta(1/log N)``
across sizes.  Benchmark: one 1200-cycle run at n = 6, 0.9 load.
"""

import pytest

from repro.algorithms.queued_routing import (
    saturation_per_node_rate,
    simulate_butterfly_queued,
    sweep_rates,
)
from repro.analysis.comparison import format_table

from conftest import emit


def test_ext_injection_rate(benchmark):
    r = benchmark(simulate_butterfly_queued, 6, 0.9, 1200)
    assert r.accepted_fraction > 0.97

    rates = (0.3, 0.6, 0.8, 0.9, 0.95)
    load_rows = []
    for rate, res in zip(rates, sweep_rates(6, rates, cycles=1500)):
        load_rows.append(
            {
                "per-input rate": rate,
                "per-node rate": round(res.rate_per_node, 4),
                "accepted": round(res.accepted_fraction, 4),
                "avg latency": round(res.avg_latency, 2),
                "max queue": res.max_queue,
            }
        )
        assert res.accepted_fraction > 0.95  # balanced: no internal wall

    sat_rows = []
    for n in (4, 6, 8):
        s = saturation_per_node_rate(n, cycles=800)
        sat_rows.append(
            {
                "n": n,
                "saturation rate/node": round(s, 4),
                "1/(n+1)": round(1 / (n + 1), 4),
                "ratio": round(s * (n + 1), 3),
            }
        )
        assert s * (n + 1) == pytest.approx(1.0, rel=0.1)
    emit(
        "EXT-7: dynamic injection-rate ceiling (paper: Theta(1/log R))",
        format_table(load_rows) + "\n\n" + format_table(sat_rows),
    )
