"""ABL-3: grid scheme vs the stage-column shape — where the win appears.

The paper motivates its layouts by area *and* "signal propagation delay
[and] drive power".  At small n the stage-column baseline actually beats
the grid scheme (the grid's o(.) overheads — block internals, composite
channels — dominate); the grid scheme's structure pays off
asymptotically: its area constant falls toward 1 x 4^n while the
stage-column shape is pinned near 10 x 4^n (its channels must carry
every exchange distance side by side).  The crossover sits near n = 8 —
a quantitative statement the paper's asymptotic framing leaves implicit.
Benchmark: both wire-level layouts + stats at n = 6.
"""

from repro.analysis.comparison import format_table
from repro.analysis.wirestats import wire_stats
from repro.layout.grid_scheme import build_grid_layout, grid_dims
from repro.layout.multistage import build_multistage_layout, multistage_dims
from repro.layout.validate import validate_layout
from repro.topology.swap import SwapNetworkParams

from conftest import emit


def both_layouts():
    grid = build_grid_layout((2, 2, 2))
    naive = build_multistage_layout(64, list(range(6)), name="bfly-cols")
    for r in (grid, naive):
        validate_layout(r.layout, r.graph).raise_if_failed()
    return grid, naive


def test_abl_wire_distribution(benchmark):
    grid, naive = benchmark(both_layouts)

    gs = wire_stats(grid.layout)
    ns = wire_stats(naive.layout)
    rows = [
        gs.as_row("grid scheme (ours)"),
        ns.as_row("stage-column baseline"),
    ]
    # identical wire counts (same network), different shapes
    assert gs.count == ns.count

    trend = []
    for n in (6, 9, 12, 15):
        nd = multistage_dims(1 << n, list(range(n)))
        gd = grid_dims(SwapNetworkParams.for_dimension(n, 3).ks)
        trend.append(
            {
                "n": n,
                "stage-column area/4^n": round(nd.area / 4**n, 2),
                "grid scheme area/4^n": round(gd.area / 4**n, 2),
            }
        )
    # the baseline is pinned near 10; the grid scheme converges to 1
    assert trend[-1]["stage-column area/4^n"] > 9.5
    assert trend[-1]["grid scheme area/4^n"] < 2.5
    assert trend[0]["grid scheme area/4^n"] > trend[0]["stage-column area/4^n"]
    emit(
        "ABL-3: wire-length distributions at n = 6 (same 768 wires)\n"
        f"areas: grid {grid.layout.area}, stage-column {naive.layout.area}",
        format_table(rows)
        + "\n\narea constants (exact planning dims):\n"
        + format_table(trend),
    )
