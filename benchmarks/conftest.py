"""Benchmark-suite helpers: every bench prints a paper-vs-measured table
(visible with ``pytest benchmarks/ --benchmark-only -s``) and asserts the
claims it reproduces, so the suite doubles as a numeric regression net."""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
