"""EXT-2: generalized hypercubes and k-ary 2-cubes via the grid recipe.

The GHC instance closes Section 3.2's loop: merging the butterfly
layout's blocks into supernodes yields a 2-D generalized hypercube whose
channels are exactly the optimal collinear layouts of complete graphs.
The torus instance covers the conclusion's k-ary n-cube claim (cycle
channels need only 2 tracks).  Benchmark: GHC(8,8) build + validation.
"""

from repro.analysis.comparison import format_table
from repro.layout.collinear import optimal_track_count
from repro.layout.ghc_layout import ghc_2d_layout, torus_2d_layout
from repro.layout.validate import validate_layout

from conftest import emit


def build_ghc():
    res = ghc_2d_layout(8, 8)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_ext_other_networks(benchmark):
    res = benchmark(build_ghc)
    assert res.dims.row_tracks == optimal_track_count(8)

    rows = []
    for r in (4, 8, 16):
        d = ghc_2d_layout(r, r).dims
        rows.append(
            {
                "network": f"GHC({r},{r})",
                "nodes": r * r,
                "channel tracks": d.row_tracks,
                "= floor(r^2/4)": optimal_track_count(r),
                "area": d.area,
            }
        )
    for k in (4, 8, 16):
        t = torus_2d_layout(k)
        validate_layout(t.layout, t.graph).raise_if_failed()
        rows.append(
            {
                "network": f"torus {k}x{k}",
                "nodes": k * k,
                "channel tracks": t.dims.row_tracks,
                "= floor(r^2/4)": "-",
                "area": t.layout.area,
            }
        )
        assert t.dims.row_tracks == 2
    emit(
        "EXT-2: GHC and k-ary 2-cube layouts (grid recipe + Appendix B channels)",
        format_table(rows),
    )
