"""EXT-5: the multilayer 3-D grid model's volume optimum (Section 4.2).

"To minimize the volume of the multilayer 3-D layout, we should select
``L = Theta(sqrt(N)/log N)``."  The model (Theorem 4.1 wiring footprint
vs the node floor) reproduces exactly that optimum: volume falls as
``1/L`` while wiring-limited, rises as ``L`` once node-limited, with the
minimum ``2 N^{3/2}/log2 N`` at ``L* = 2 sqrt(N)/log2 N``.  Benchmark:
the sweep at n = 20.
"""

import math

from repro.analysis.comparison import format_table
from repro.analysis.formulas import num_nodes
from repro.layout.multilayer3d import (
    min_volume_3d,
    optimal_layers_3d,
    volume_3d,
    volume_sweep,
)

from conftest import emit


def test_ext_volume3d(benchmark):
    pts = benchmark(volume_sweep, 20)
    vols = [p.volume for p in pts]
    mid = min(range(len(vols)), key=vols.__getitem__)
    assert 0 < mid < len(vols) - 1  # interior minimum (V-shape)

    n = 20
    N = num_nodes(n)
    lstar = optimal_layers_3d(n)
    rows = [
        {
            "L": p.L,
            "L/L*": round(p.L / lstar, 3),
            "footprint": p.footprint,
            "volume": p.volume,
            "regime": p.regime,
        }
        for p in pts
    ]
    assert abs(min_volume_3d(n) - 2 * N ** 1.5 / math.log2(N)) < 1e-6
    emit(
        f"EXT-5: 3-D volume model at n = {n} — optimum L* = {lstar:.0f} "
        f"= 2 sqrt(N)/log2 N (paper: Theta(sqrt(N)/log N)); "
        f"V* = {min_volume_3d(n):.3e}",
        format_table(rows),
    )
