"""SCALE: node-size scalability of the grid scheme.

Paper (Sections 3.3, 4.2): each node may occupy a square of side
W = o(sqrt(N)/(L log N)) without affecting the leading constants, because
nodes are aligned as a 2-D grid.  Built layouts at n = 6 show the flat
region; closed-form dims at n = 24 show the knee near the threshold.
The benchmark times a W = 16 build + validation.
"""

from repro.analysis.comparison import format_table
from repro.analysis.formulas import max_node_side_multilayer
from repro.layout.grid_scheme import build_grid_layout, grid_dims
from repro.layout.validate import validate_layout

from conftest import emit


def build_and_validate(W):
    res = build_grid_layout((2, 2, 2), W=W)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_node_scalability(benchmark):
    res = benchmark(build_and_validate, 16)
    assert res.dims.W == 16

    rows = []
    base = None
    for W in (4, 8, 16, 32):
        r = build_and_validate(W)
        a = r.layout.area
        base = base or a
        rows.append({"W (built, n=6)": W, "area": a, "vs W=4": round(a / base, 3)})

    k = 8
    n = 3 * k
    thr = max_node_side_multilayer(n, 2)
    big_rows = []
    base_big = grid_dims((k, k, k), W=4).area
    for W in (4, 32, 128, 512, 1024):
        d = grid_dims((k, k, k), W=W)
        big_rows.append(
            {
                "W (dims, n=24)": W,
                "W/threshold": round(W / thr, 3),
                "area vs W=4": round(d.area / base_big, 3),
            }
        )
    # flat while far below the threshold; growing once near it
    assert big_rows[1]["area vs W=4"] < 1.6
    assert big_rows[-1]["area vs W=4"] > 3
    emit(
        "SCALE: node-size scalability (paper: W = o(sqrt(N)/(L log N)) free)",
        format_table(rows) + "\n\n" + format_table(big_rows)
        + f"\n(threshold sqrt(N)/(L log N) = {thr:.0f} at n = {n}, L = 2)",
    )
