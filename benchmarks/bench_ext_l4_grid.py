"""EXT-12: grid layouts from ISN(l, B_k1) with l > 3 (Section 3.3).

"We can also transform ISN(l, B_k1) with l > 3 into a butterfly network
and then lay it out either using the recursive grid layout scheme [27]
or using a bottom-up method ...  For both methods, the leading constants
of the resultant area and maximum wire length remain the same."

The generalized grid scheme arranges ``2**(n-k1-k2)`` grid rows whose
vertical channels carry the *union* of all level >= 3 swap patterns
(assigned by the congestion-optimal left-edge rule, with right-edge
ports globally ordered by destination grid row).  Built l = 4 and l = 5
layouts pass the full validator; the closed-form area constant converges
to the same 1 x 4^n as l = 3.  Benchmark: the (2,2,2,2) build +
validation (n = 8, 2304 nodes).
"""

from repro.analysis.comparison import format_table
from repro.layout.grid_scheme import build_grid_layout, grid_dims
from repro.layout.validate import validate_layout

from conftest import emit


def build_l4():
    res = build_grid_layout((2, 2, 2, 2))
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_ext_l4_grid(benchmark):
    res = benchmark(build_l4)
    assert len(res.layout.nodes) == 9 * 256

    built_rows = []
    for ks in [(1, 1, 1, 1), (2, 2, 2, 2), (1, 1, 1, 1, 1)]:
        r = build_grid_layout(ks)
        validate_layout(r.layout, r.graph).raise_if_failed()
        s = r.layout.summary()
        built_rows.append(
            {
                "ks": ks,
                "l": len(ks),
                "nodes": s["nodes"],
                "area (built)": s["area"],
                "max wire": s["max_wire_length"],
            }
        )

    conv = []
    for k in (3, 4, 5, 6, 7):
        n4 = 4 * k
        d4 = grid_dims((k,) * 4)
        row = {"n": n4, "l=4 area/4^n": round(d4.area / 4**n4, 4)}
        if n4 % 3 == 0:
            d3 = grid_dims((n4 // 3,) * 3)
            row["l=3 area/4^n (same n)"] = round(d3.area / 4**n4, 4)
        conv.append(row)
    ratios = [r["l=4 area/4^n"] for r in conv]
    assert all(a > b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 1.15
    emit(
        "EXT-12: l = 4 / l = 5 grid layouts (Section 3.3's l > 3 remark) — "
        "leading constant -> 1",
        format_table(built_rows) + "\n\n" + format_table(conv),
    )
