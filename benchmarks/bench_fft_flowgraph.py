"""FFT: functional verification that our graphs are FFT flow graphs.

Section 2.2's argument rests on ISNs performing FFT by a variant ascend
algorithm.  We run real FFTs through the butterfly and ISN dataflows and
compare with numpy; the benchmark times a 4096-point FFT over the B_12
flow graph (pure-python orchestration over numpy stages).
"""

import numpy as np

from repro.algorithms.fft import fft_via_butterfly, fft_via_isn
from repro.analysis.comparison import format_table
from repro.topology.isn import ISN

from conftest import emit

RNG = np.random.default_rng(2000)


def test_fft_flowgraph(benchmark):
    x = RNG.normal(size=4096) + 1j * RNG.normal(size=4096)
    y = benchmark(fft_via_butterfly, x)
    assert np.allclose(y, np.fft.fft(x))

    rows = []
    for ks in [(1, 1), (2, 2), (3, 3), (3, 3, 3), (4, 3, 3), (4, 4, 2), (5, 5)]:
        isn = ISN.from_ks(ks)
        xs = RNG.normal(size=isn.rows) + 1j * RNG.normal(size=isn.rows)
        err = float(np.max(np.abs(fft_via_isn(xs, isn) - np.fft.fft(xs))))
        rows.append(
            {
                "ISN": ks,
                "size": isn.rows,
                "stages": isn.stages,
                "swap steps": len(isn.swap_step_indices()),
                "max |err| vs numpy": f"{err:.2e}",
            }
        )
        assert err < 1e-10
    emit("FFT: butterfly and ISN dataflows vs numpy.fft", format_table(rows))
