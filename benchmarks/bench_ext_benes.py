"""EXT-3: Benes fabrics — rearrangeability and packaging.

The paper's introduction motivates butterfly layouts with "network
switches/routers ... based on butterfly, Benes, or related
interconnection topologies".  This bench exercises that substrate: the
looping algorithm routes arbitrary permutations (asserted by independent
simulation), and the row-level Benes inherits butterfly packaging
economics (only high-bit boundaries leave a row module).  Benchmark:
routing a random permutation on 1024 terminals.
"""

import random

from repro.algorithms.benes_routing import apply_settings, route_permutation
from repro.analysis.comparison import format_table
from repro.topology.benes import Benes

from conftest import emit


def route_1024():
    rng = random.Random(7)
    perm = list(range(1024))
    rng.shuffle(perm)
    settings = route_permutation(perm)
    assert apply_settings(settings) == perm
    return settings


def test_ext_benes(benchmark):
    settings = benchmark(route_1024)
    assert settings.num_terminals == 1024

    rows = []
    rng = random.Random(1)
    for n in (3, 5, 7, 9):
        N = 1 << n
        perm = list(range(N))
        rng.shuffle(perm)
        s = route_permutation(perm)
        ok = apply_settings(s) == perm
        rows.append(
            {
                "N": N,
                "switch stages": len(s.stages),
                "switches": len(s.stages) * N // 2,
                "crossed": s.count_crossed(),
                "realized": ok,
            }
        )
        assert ok

    pkg = []
    for n in (3, 6, 9):
        b = Benes(n)
        for k in (1, n // 2, n - 1):
            pkg.append(
                {
                    "n": n,
                    "rows/module": 1 << k,
                    "off-module links": b.offmodule_links_per_module(k),
                    "boundaries leaving": sum(1 for t in b.boundaries if t >= k),
                    "of": len(b.boundaries),
                }
            )
    emit(
        "EXT-3: Benes routing (looping algorithm) and row-module packaging",
        format_table(rows) + "\n\n" + format_table(pkg),
    )
