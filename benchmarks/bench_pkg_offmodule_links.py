"""PKG-1: average off-module links per node under the row partition.

Section 2.3's display: 4(l-1)(2^k1 - 1)/((n_l+1) 2^k1) < 4/k1.  The exact
enumeration over every swap-butterfly link must match the closed form for
every parameter vector; the benchmark times the exact count at n = 9.
"""

from fractions import Fraction

from repro.analysis.comparison import format_table
from repro.packaging.partition import RowPartition
from repro.packaging.pins import (
    count_off_module_links,
    row_partition_avg_bound,
    row_partition_avg_per_node,
    row_partition_offmodule_per_module,
)
from repro.transform.swap_butterfly import SwapButterfly

from conftest import emit


def exact_count(ks):
    sb = SwapButterfly.from_ks(ks)
    return count_off_module_links(RowPartition.natural(sb))


def test_pkg_offmodule_links(benchmark):
    rep = benchmark(exact_count, (3, 3, 3))
    assert rep.avg_per_node == Fraction(7, 10)

    rows = []
    for ks in [(2, 2), (3, 3), (2, 2, 2), (3, 3, 3), (3, 2, 2), (2, 2, 2, 2)]:
        r = exact_count(ks)
        formula = row_partition_avg_per_node(ks)
        bound = row_partition_avg_bound(ks)
        assert r.avg_per_node == formula
        assert formula < bound
        assert r.max_per_module == row_partition_offmodule_per_module(ks)
        rows.append(
            {
                "ks": ks,
                "modules": r.num_modules,
                "pins/module (exact)": r.max_per_module,
                "avg links/node (exact)": float(r.avg_per_node),
                "paper formula": float(formula),
                "bound 4/k1": float(bound),
            }
        )
    emit("PKG-1: off-module links per node — exact enumeration vs closed form",
         format_table(rows))
