"""FIG-3: the recursive grid layout scheme (paper Figure 3).

Builds the full wire-level layout for n = 6 (the smallest size where both
composite levels and all channel structures appear), validates every
layout-model rule, and reports the grid structure the figure sketches.
The benchmark times construction + validation.
"""

from repro.analysis.comparison import format_table
from repro.layout.grid_scheme import build_grid_layout
from repro.layout.validate import validate_layout

from conftest import emit

KS = (2, 2, 2)


def build_and_validate():
    res = build_grid_layout(KS)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_fig3_recursive_grid(benchmark):
    res = benchmark(build_and_validate)
    d = res.dims
    s = res.layout.summary()
    rows = [
        {"quantity": "grid (rows x cols)", "value": f"{d.grid_rows} x {d.grid_cols}"},
        {"quantity": "block size", "value": f"{d.block.width} x {d.block.height}"},
        {"quantity": "H channel tracks (2^(k1+k2))", "value": d.chan_h},
        {"quantity": "V channel tracks (2^(k1+k3))", "value": d.chan_v},
        {"quantity": "nodes / wires / segments",
         "value": f"{s['nodes']} / {s['wires']} / {s['segments']}"},
        {"quantity": "area (grid units^2)", "value": s["area"]},
        {"quantity": "max wire length", "value": s["max_wire_length"]},
    ]
    assert d.chan_h == 16 and d.chan_v == 16
    assert s["nodes"] == 448
    emit("FIG-3: recursive grid layout, built wire-level at n = 6",
         format_table(rows))
