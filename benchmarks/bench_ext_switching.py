"""EXT-6: switching/sorting fabrics under the stage-column baseline.

The paper's introduction motivates its layouts with "VLSI layouts of
switching and sorting networks used in network switches and routers
[16]" and cites the Batcher bitonic sorter layout [11].  This bench lays
out butterfly, Benes and bitonic-sorter flow graphs with the
congestion-optimal stage-column engine (the baseline shape the grid
scheme beats), validates all of them, and contrasts the butterfly
numbers with the grid scheme.  Benchmark: the Benes(4) build +
validation.
"""

from repro.analysis.comparison import format_table
from repro.layout.grid_scheme import build_grid_layout
from repro.layout.multistage import build_multistage_layout
from repro.layout.validate import validate_layout
from repro.topology.benes import benes_boundary_bits
from repro.topology.bitonic import BitonicNetwork

from conftest import emit


def build_benes():
    res = build_multistage_layout(16, benes_boundary_bits(4), name="benes")
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_ext_switching_fabrics(benchmark):
    benchmark(build_benes)

    rows = []
    configs = [
        ("butterfly B_4", 16, list(range(4))),
        ("Benes (4)", 16, benes_boundary_bits(4)),
        ("bitonic sorter r=4", 16, BitonicNetwork(4).boundaries),
    ]
    for name, R, bits in configs:
        res = build_multistage_layout(R, bits, name=name)
        validate_layout(res.layout, res.graph).raise_if_failed()
        s = res.layout.summary()
        rows.append(
            {
                "network": name,
                "stages": res.dims.stages,
                "wires": s["wires"],
                "area": s["area"],
                "max wire": s["max_wire_length"],
            }
        )
    grid = build_grid_layout((2, 1, 1))
    s = grid.layout.summary()
    rows.append(
        {
            "network": "butterfly B_4 (grid scheme)",
            "stages": 5,
            "wires": s["wires"],
            "area": s["area"],
            "max wire": s["max_wire_length"],
        }
    )
    emit(
        "EXT-6: stage-column layouts of switching/sorting fabrics "
        "(all validated; grid scheme for contrast)",
        format_table(rows),
    )
