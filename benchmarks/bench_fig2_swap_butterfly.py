"""FIG-2: 8x8 and 16x16 swap-butterflies (paper Figure 2).

The figure's content is the row-number annotation of each node; we print
the full matrices and verify both transformations, benchmarking the
16x16 generator-level verification.
"""

from repro.transform.automorphism import verify_by_generators, verify_by_graphs
from repro.transform.swap_butterfly import SwapButterfly
from repro.viz.ascii import swap_butterfly_figure

from conftest import emit


def test_fig2_swap_butterflies(benchmark):
    assert verify_by_graphs((2, 1))  # 8x8 (n = 3)
    ok = benchmark(verify_by_generators, (2, 2))  # 16x16 (n = 4)
    assert ok

    body = []
    for ks in [(2, 1), (2, 2)]:
        sb = SwapButterfly.from_ks(ks)
        body.append(f"{2**sb.n}x{2**sb.n} butterfly from ISN{ks}:")
        body.append(swap_butterfly_figure(sb))
        body.append("")
    emit("FIG-2: swap-butterfly row-number matrices (paper Figure 2)", "\n".join(body))
