"""EXT-4: packaging hierarchies with more than two levels (Section 2.3).

"The proposed partitioning and packaging methods can be extended to the
case where there are more than two levels in the packaging hierarchy ...
the improvements over the simple partitioning and packaging scheme are
even more significant."  Nested row modules (chips inside boards inside
cabinets) with exact per-level pin counts, verified against enumeration.
Benchmark: the verified 4-level design at n = 8.
"""

from repro.analysis.comparison import format_table
from repro.packaging.multilevel import multilevel_design

from conftest import emit


def verified_design():
    return multilevel_design((2, 2, 2, 2), verify=True)


def test_ext_multilevel(benchmark):
    stats = benchmark(verified_design)
    assert len(stats) == 4

    rows = []
    for ks in [(3, 3, 3), (2, 2, 2, 2), (4, 3, 2)]:
        for s in multilevel_design(ks, verify=True):
            rows.append(
                {
                    "ks": ks,
                    "level": s.level,
                    "modules": s.num_modules,
                    "nodes/module": s.nodes_per_module,
                    "pins (ours)": s.pins_per_module,
                    "pins (naive same size)": s.naive_pins_same_size,
                    "saved": s.naive_pins_same_size - s.pins_per_module,
                }
            )
            if s.level < len(ks):
                assert s.pins_per_module < s.naive_pins_same_size
    # absolute savings grow with the level (the paper's remark)
    l33 = [r for r in rows if r["ks"] == (3, 3, 3)][:-1]
    assert l33[0]["saved"] < l33[1]["saved"]
    emit(
        "EXT-4: multi-level packaging hierarchies (exact per-level pins)",
        format_table(rows),
    )
