"""FIG-4: the collinear layout of K_9 (paper Figure 4).

The paper's figure shows K_9 laid out in exactly floor(81/4) = 20 tracks.
We regenerate the track map, build the geometric layout, validate it, and
benchmark construction + validation.
"""

from repro.layout.collinear import collinear_layout, optimal_track_count
from repro.layout.validate import validate_layout
from repro.viz.ascii import collinear_figure

from conftest import emit


def build_and_validate():
    cl = collinear_layout(9)
    validate_layout(cl.layout, cl.graph).raise_if_failed()
    return cl


def test_fig4_collinear_k9(benchmark):
    cl = benchmark(build_and_validate)
    assert cl.tracks_total == 20 == optimal_track_count(9)
    emit(
        "FIG-4: collinear layout of K_9 — paper: 20 tracks; measured: "
        f"{cl.tracks_total}",
        collinear_figure(9),
    )
