"""BOARD: the Section 5.2 worked example, every number.

Paper: B_9 with 64-pin side-20 chips -> 64 chips x 80 nodes (8 rows of
the swap-butterfly per chip), channels of 64 links reduced to 60, total
board area 409.6K (L = 2), 160K (L = 4), 78.4K (L = 8), wire space 15 at
L = 8, and ~171 chips for the naive partitioning.  All asserted exactly.
"""

from repro.analysis.comparison import format_table
from repro.layout.grid2d import build_grid2d_layout
from repro.layout.validate import validate_layout
from repro.packaging.board import ChipSpec, board_design, paper_board_example
from repro.topology.graph import Graph

from conftest import emit

PAPER_AREAS = {2: 409600, 4: 160000, 8: 78400}


def test_sec52_board_example(benchmark):
    d2 = benchmark(paper_board_example, 2)
    assert (d2.num_chips, d2.nodes_per_chip) == (64, 80)
    assert d2.pins_per_chip == 56 <= 64
    assert d2.channel_links == 64 and d2.channel_links_optimized == 60

    rows = []
    for L, paper_area in PAPER_AREAS.items():
        d = paper_board_example(L)
        rows.append(
            {
                "layers": L,
                "chips": d.num_chips,
                "nodes/chip": d.nodes_per_chip,
                "channel tracks": d.channel_tracks,
                "board side": d.board_side_x,
                "area (measured)": d.board_area,
                "area (paper)": paper_area,
                "match": d.board_area == paper_area,
            }
        )
        assert d.board_area == paper_area
    d8 = paper_board_example(8)
    assert d8.wire_space_between_chips == 15 < d8.chip.side
    assert d2.naive_chips_paper_estimate == 171

    # geometric realization: side-20 chips CAN carry the K_8-quadruple
    # wiring once each link set is split to opposite chip edges (the
    # paper's remark); the built board validates under the full rule set.
    def k8x4(_):
        g = Graph("K8x4")
        g.add_nodes(range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                g.add_edge(u, v, 4)
        return g

    board = build_grid2d_layout(
        8, 8, k8x4, k8x4, W=20, split_channels=True, name="board"
    )
    validate_layout(board.layout, board.graph).raise_if_failed()
    assert board.dims.chan_h == board.dims.chan_h2 == 32  # 64 links split
    geom_note = (
        f"geometric realization (validated): side-20 chips, split channels "
        f"32+32, board {board.layout.width} x {board.layout.height} "
        f"(paper's idealized 640 assumes zero margins + the neighbor-link "
        f"optimisation)"
    )
    emit(
        "BOARD (Section 5.2): 9-dim butterfly on 64-pin side-20 chips\n"
        f"naive partitioning: {d2.naive_chips_paper_estimate} chips "
        "(paper: ~171) vs ours: 64\n" + geom_note,
        format_table(rows),
    )
