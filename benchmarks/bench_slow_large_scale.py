"""Opt-in large-scale run: the full n = 12 wire-level construction.

Builds and fully validates the 53 248-node butterfly layout (~100k wires,
~290k segments) — set ``REPRO_SLOW=1`` to enable (about a minute).  The
default suite covers n <= 9; this run exists so the claim "the
construction scales" is executable, not anecdotal.
"""

import os

import pytest

from repro.analysis.comparison import format_table
from repro.layout.grid_scheme import build_grid_layout
from repro.layout.validate import validate_layout

from conftest import emit

SLOW = os.environ.get("REPRO_SLOW") == "1"


@pytest.mark.skipif(not SLOW, reason="set REPRO_SLOW=1 to run the n=12 build")
def test_slow_n12_build(benchmark):
    def build():
        res = build_grid_layout((4, 4, 4))
        validate_layout(res.layout, res.graph).raise_if_failed()
        return res

    res = benchmark.pedantic(build, rounds=1, iterations=1)
    s = res.layout.summary()
    assert s["nodes"] == 13 * 4096
    emit(
        "SLOW: n = 12 wire-level build + full validation",
        format_table([{"metric": k, "value": v} for k, v in s.items()]),
    )
