"""THM-3: optimal Thompson-model layout (Section 3).

Paper: area N^2/log2^2 N + o(.) (optimal within 1 + o(1)); max wire
length N/log2 N + o(.) — a factor-2 improvement on the authors' previous
layouts.  We build full wire-level layouts (n = 6, 7), validate them, and
extrapolate the construction's exact closed-form dimensions to n = 36 to
exhibit the leading constant converging to 1.  The benchmark times the
n = 6 build + validation.
"""

from repro.analysis.comparison import format_table, leading_constant_area
from repro.analysis.formulas import thompson_area, thompson_max_wire, yeh_previous_max_wire
from repro.layout.grid_scheme import build_grid_layout, grid_dims, max_wire_bounds
from repro.layout.validate import validate_layout
from repro.topology.swap import SwapNetworkParams

from conftest import emit


def build_and_validate(ks):
    res = build_grid_layout(ks)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_sec3_thompson_layout(benchmark):
    res = benchmark(build_and_validate, (2, 2, 2))

    built_rows = []
    for ks in [(2, 2, 2), (3, 2, 2)]:
        n = sum(ks)
        r = build_and_validate(ks)
        s = r.layout.summary()
        built_rows.append(
            {
                "n": n,
                "area (built)": s["area"],
                "paper N^2/log^2N": int(thompson_area(n)),
                "max wire (built)": s["max_wire_length"],
                "paper N/logN": int(thompson_max_wire(n)),
                "prev work 2N/logN": int(yeh_previous_max_wire(n)),
            }
        )
    # convergence of the construction's leading constants (closed form);
    # max wire is sandwiched between two bounds sharing the leading term
    conv_rows = []
    for n in (9, 15, 21, 27, 33):
        ks = SwapNetworkParams.for_dimension(n, 3).ks
        d = grid_dims(ks)
        lo, hi = max_wire_bounds(d)
        f = thompson_max_wire(n)
        conv_rows.append(
            {
                "n": n,
                "area/4^n": round(d.area / 4**n, 4),
                "area vs paper formula": round(leading_constant_area(d.area, n), 4),
                "maxwire lo/formula": round(lo / f, 3),
                "maxwire hi/formula": round(hi / f, 3),
            }
        )
    ratios = [r["area/4^n"] for r in conv_rows]
    assert all(a > b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 1.05  # within 5% of the 2^{2n} leading term at n=33
    emit(
        "THM-3: Thompson-model layout — built measurements and convergence",
        format_table(built_rows)
        + "\n\nleading-constant convergence (closed-form dims):\n"
        + format_table(conv_rows)
        + "\n(area/4^n -> 1 is the construction's optimality; the paper-"
        "formula\n column carries the (n+1)^2/log2^2 N factor of N = (n+1)2^n)",
    )
