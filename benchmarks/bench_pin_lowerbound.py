"""LB-PIN: the injection-rate pin lower bound, demonstrated by simulation.

Section 2.3's matching lower bound: at injection rate Theta(1/log R) a
module of M nodes needs Omega(M/log R) off-module links.  We route random
uniform traffic through the swap-butterfly, measure per-module boundary
demand, and show (a) traffic is balanced across modules (the argument's
premise) and (b) our partition's pin count sits within a small constant
of the measured demand-derived bound.  Benchmark: the 50k-packet sim.
"""

import numpy as np

from repro.algorithms.routing import measure_offmodule_traffic
from repro.analysis.bounds import injection_rate, pin_lower_bound
from repro.analysis.comparison import format_table
from repro.packaging.pins import row_partition_offmodule_per_module

from conftest import emit


def test_pin_lower_bound(benchmark):
    d = benchmark(measure_offmodule_traffic, (3, 3, 3), 50000)

    rows = []
    for ks in [(2, 2), (2, 2, 2), (3, 3), (3, 3, 3)]:
        n = sum(ks)
        k1 = ks[0]
        R = 1 << n
        M = (n + 1) << k1  # nodes per row-partition module
        sim = measure_offmodule_traffic(ks, 30000)
        counts = np.array(list(sim.crossings_per_module.values()))
        balance = counts.std() / counts.mean()
        # demand per module per step when every input injects at rate
        # 1/log2 R: crossings/packet * (R inputs / modules) * rate * 2 ends
        modules = 1 << (n - k1)
        demand = (
            2 * sim.total_crossings / sim.num_packets * R / modules
        ) * injection_rate(R)
        pins = row_partition_offmodule_per_module(ks)
        lb = pin_lower_bound(M, R)
        rows.append(
            {
                "ks": ks,
                "traffic balance (cv)": round(float(balance), 3),
                "measured demand": round(demand, 2),
                "pin LB (1-M/N)M/logR": round(lb, 2),
                "our pins": pins,
                "pins/demand": round(pins / demand, 2),
            }
        )
        assert balance < 0.15  # balanced within a small factor (premise)
        assert pins >= demand * 0.9  # pins cover the sustained demand
        assert pins <= 32 * max(demand, 1)  # ...within a constant factor
        assert lb <= pins  # the analytic bound really is a lower bound
    emit(
        "LB-PIN: random-routing demand vs Theorem 2.1 pins "
        "(paper: Omega(M/log R) lower bound)",
        format_table(rows),
    )
