"""PKG-3: our packaging vs the naive consecutive-rows baseline.

Section 2.3: the naive scheme needs ~2 off-module links per node; ours
needs O(1/log N) — a Theta(log N) improvement, already better at small k1.
The benchmark times the exact naive enumeration for B_9.
"""

from repro.analysis.comparison import format_table
from repro.packaging.baseline import NaiveRowPartition, naive_avg_per_node
from repro.packaging.pins import row_partition_avg_per_node
from repro.topology.butterfly import Butterfly

from conftest import emit


def naive_exact(n, rows_per_module):
    return NaiveRowPartition(Butterfly(n), rows_per_module).avg_per_node()


def test_pkg_vs_naive(benchmark):
    avg9 = benchmark(naive_exact, 9, 8)

    rows = []
    prev_ratio = 0.0
    for l, k1 in [(2, 2), (2, 3), (3, 2), (3, 3), (3, 4), (3, 5)]:
        ks = (k1,) * l
        n = l * k1
        ours = float(row_partition_avg_per_node(ks))
        naive = float(naive_avg_per_node(n, 0))
        ratio = naive / ours
        rows.append(
            {
                "n": n,
                "ks": ks,
                "naive links/node": round(naive, 3),
                "ours links/node": round(ours, 3),
                "improvement": round(ratio, 2),
            }
        )
        assert ratio > 1.5  # better even for small k1 (paper: k1 >= 3 cited)
    # Theta(log N): improvement grows with n at fixed l
    l3 = [r for r in rows if len(r["ks"]) == 3]
    assert l3[0]["improvement"] < l3[-1]["improvement"]
    assert float(avg9) < 2
    emit(
        "PKG-3: packaging vs naive consecutive-rows (paper: ~2 vs O(1/log N))",
        format_table(rows),
    )
