"""ABL-1: ablation — collinear track-order reversal.

Appendix B's closing remark: "we can reverse the order of horizontal
tracks so that the maximum wire length is reduced."  Quantifies the
effect across K_N sizes on real geometry; benchmark: K_32 both orders.
"""

from repro.analysis.comparison import format_table
from repro.layout.collinear import collinear_layout
from repro.layout.validate import validate_layout

from conftest import emit


def both_orders(n):
    fwd = collinear_layout(n, order="forward")
    rev = collinear_layout(n, order="reversed")
    return fwd, rev


def test_abl_track_reversal(benchmark):
    fwd32, rev32 = benchmark(both_orders, 32)
    for cl in (fwd32, rev32):
        validate_layout(cl.layout, cl.graph).raise_if_failed()

    rows = []
    for n in (8, 16, 24, 32, 48):
        fwd, rev = both_orders(n)
        f, r = fwd.layout.max_wire_length(), rev.layout.max_wire_length()
        rows.append(
            {
                "N": n,
                "max wire (forward)": f,
                "max wire (reversed)": r,
                "reduction": f"{(1 - r / f) * 100:.1f}%",
            }
        )
        assert r < f
    emit(
        "ABL-1: collinear track-order reversal (paper: reduces max wire length)",
        format_table(rows),
    )
