"""PKG-2 / Theorem 2.1: the nucleus partition's module bounds.

"We can partition an R x R butterfly network into modules that have no
more than 2^k1 k1 nodes and no more than 2^(k1+2) off-module links per
module."  Exact enumeration across parameter vectors; the benchmark times
the n = 9 nucleus accounting.
"""

from repro.analysis.comparison import format_table
from repro.analysis.bounds import pin_lower_bound
from repro.packaging.partition import NucleusPartition
from repro.packaging.pins import count_off_module_links, nucleus_partition_module_bound
from repro.transform.swap_butterfly import SwapButterfly

from conftest import emit


def exact(ks):
    sb = SwapButterfly.from_ks(ks)
    part = NucleusPartition(sb)
    return part, count_off_module_links(part)


def test_thm21_packaging(benchmark):
    _, rep9 = benchmark(exact, (3, 3, 3))
    assert rep9.max_per_module == 32 == nucleus_partition_module_bound(3)

    rows = []
    for ks in [(2, 2), (2, 2, 2), (3, 2, 2), (3, 3, 3), (3, 3, 2), (2, 2, 2, 2)]:
        part, rep = exact(ks)
        k1 = ks[0]
        n = sum(ks)
        bound = nucleus_partition_module_bound(k1)
        # interior modules: k_i 2^k_i nodes (the first segment adds the
        # input stage, hence (k1+1) 2^k1 — recorded in EXPERIMENTS.md)
        lb = pin_lower_bound(k1 * 2**k1, 2**n)
        assert rep.max_per_module <= bound
        rows.append(
            {
                "ks": ks,
                "modules": part.num_modules,
                "max nodes": part.max_nodes_per_module,
                "paper node bound k1*2^k1": k1 * 2**k1,
                "max pins (exact)": rep.max_per_module,
                "bound 2^(k1+2)": bound,
                "pin LB M/logR": f"{lb:.1f}",
                "pins/LB": f"{rep.max_per_module / lb:.2f}",
            }
        )
    emit("PKG-2 (Theorem 2.1): nucleus partition — exact vs bounds",
         format_table(rows))
