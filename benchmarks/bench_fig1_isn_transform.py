"""FIG-1: the 4x4 ISN (k = (1,1)) and its butterfly transformation.

Regenerates Figure 1's content (the stage schedule and the butterfly row
carried by every node) and verifies the automorphism both by explicit
relabeling and by full graph comparison; the benchmark times the
end-to-end transform + verification.
"""

from repro.topology.isn import ISN
from repro.transform.automorphism import verify_by_generators, verify_by_graphs
from repro.transform.swap_butterfly import SwapButterfly
from repro.viz.ascii import isn_schedule_figure, swap_butterfly_figure

from conftest import emit

KS = (1, 1)


def test_fig1_isn_transform(benchmark):
    ok = benchmark(verify_by_graphs, KS)
    assert ok
    assert verify_by_generators(KS)

    sb = SwapButterfly.from_ks(KS)
    # the paper's worked mapping: swap-butterfly node (1,2) = butterfly (2,2)
    assert sb.phi_inverse(2, 1) == 2

    emit(
        "FIG-1: 4x4 ISN -> 4x4 butterfly (paper Figure 1)",
        isn_schedule_figure(ISN.from_ks(KS))
        + "\n\nbutterfly row at each (physical row, stage):\n"
        + swap_butterfly_figure(sb)
        + "\n\nautomorphism verified: graphs=True generators=True",
    )
