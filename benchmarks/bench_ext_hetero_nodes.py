"""EXT-8: heterogeneous I/O node sizes (the W' claim of Section 3.3).

"Each of O(N/log N) nodes [the input/output stages] can occupy a square
of side W' = o(sqrt(N/log N)) ... without affecting the leading
constants."  The dimension model shows the area knee sitting at the
construction's strip-height threshold, and the knee moving toward the
paper's asymptotic headroom under the asymmetric parameter choices the
paper prescribes ("by appropriately selecting parameters").  Benchmark:
the model sweep.
"""

from repro.analysis.comparison import format_table
from repro.layout.node_scaling import (
    hetero_io_dims,
    io_node_threshold,
    paper_io_threshold,
)

from conftest import emit

N_DIM = 18
VECTORS = [(6, 6, 6), (7, 7, 4), (8, 8, 2)]


def sweep():
    rows = []
    for ks in VECTORS:
        base = hetero_io_dims(ks, 4).area
        for wio in (4, 64, 256, 450):
            rows.append(
                {
                    "ks": ks,
                    "W_io": wio,
                    "area vs W_io=4": round(hetero_io_dims(ks, wio).area / base, 3),
                    "knee (model)": round(io_node_threshold(ks), 1),
                }
            )
    return rows


def test_ext_hetero_nodes(benchmark):
    rows = benchmark(sweep)

    # the knee grows monotonically as k2 grows (asymmetric choice)
    knees = [io_node_threshold(ks) for ks in VECTORS]
    assert knees[0] < knees[1] < knees[2]
    # below its knee, every vector's area is flat within 10% (the cell
    # width term 2(W_io - W) contributes a vanishing o(.) share)
    for ks in VECTORS:
        knee = io_node_threshold(ks)
        below = [r for r in rows if r["ks"] == ks and r["W_io"] < knee]
        assert all(r["area vs W_io=4"] < 1.10 for r in below)
    emit(
        f"EXT-8: I/O node size headroom at n = {N_DIM} "
        f"(paper asymptotic headroom ~ {paper_io_threshold(N_DIM):.0f})",
        format_table(rows),
    )
