"""THM-41: multilayer layouts (Theorem 4.1).

Paper: with L layers, area 4N^2/(L^2 log2^2 N) for even L and
4N^2/((L^2-1) log2^2 N) for odd L; max wire 2N/(L log2 N); volume
4N^2/(L log2^2 N).  We build and validate real layouts for L = 2..8 at
n = 6 and check the closed-form dims reproduce the even/odd L-scaling at
large n.  The benchmark times the L = 4 build + validation.
"""

import pytest

from repro.analysis.comparison import format_table
from repro.analysis.formulas import multilayer_area, multilayer_max_wire, multilayer_volume
from repro.layout.grid_scheme import build_grid_layout, grid_dims
from repro.layout.validate import validate_layout

from conftest import emit

KS = (2, 2, 2)


def build_and_validate(L):
    res = build_grid_layout(KS, L=L)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


def test_thm41_multilayer(benchmark):
    res4 = benchmark(build_and_validate, 4)
    n = sum(KS)

    rows = []
    prev_area = None
    for L in (2, 3, 4, 5, 6, 8):
        r = build_and_validate(L)
        s = r.layout.summary()
        rows.append(
            {
                "L": L,
                "area (built)": s["area"],
                "paper area": int(multilayer_area(n, L)),
                "volume (built)": s["volume"],
                "paper volume": int(multilayer_volume(n, L)),
                "max wire (built)": s["max_wire_length"],
                "paper wire": int(multilayer_max_wire(n, L)),
            }
        )
        if prev_area is not None:
            assert s["area"] <= prev_area  # monotone in L
        prev_area = s["area"]

    # large-n closed form: the even/odd L^2 vs L^2-1 scaling
    k = 14  # blocks do not shrink with L, so high L needs large n
    big = 3 * k
    d2 = grid_dims((k, k, k), L=2).area
    scale_rows = []
    for L in (3, 4, 5, 6, 8):
        dL = grid_dims((k, k, k), L=L).area
        denom = L * L if L % 2 == 0 else L * L - 1
        scale_rows.append(
            {
                "L": L,
                "area(2)/area(L) measured": round(d2 / dL, 3),
                "paper denom/4": denom / 4,
            }
        )
        assert d2 / dL == pytest.approx(denom / 4, rel=0.08)
    emit(
        "THM-41: multilayer layouts — built (n = 6) and closed-form scaling "
        f"(n = {big})",
        format_table(rows) + "\n\nL-scaling at large n:\n" + format_table(scale_rows),
    )
