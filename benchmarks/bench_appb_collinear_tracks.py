"""APP-B: collinear track counts — optimal vs Chen-Agrawal vs lower bound.

Appendix B: the optimal collinear layout of K_N uses floor(N^2/4) tracks,
exactly the bisection lower bound, 25% below the prior ~N^2/3 bound.  The
sweep regenerates the comparison; the benchmark times the full track
assignment for K_256 (32640 links).
"""

from repro.analysis.bounds import collinear_track_lower_bound
from repro.analysis.comparison import format_table
from repro.layout.collinear import (
    chen_agrawal_track_count,
    naive_track_count,
    optimal_track_count,
    track_assignment,
)

from conftest import emit


def test_appb_collinear_tracks(benchmark):
    assign = benchmark(track_assignment, 256)
    assert max(assign.values()) + 1 == optimal_track_count(256)

    rows = []
    for p in range(3, 11):  # the bounds coincide at N = 4
        n = 1 << p
        ours = optimal_track_count(n)
        prior = chen_agrawal_track_count(n)
        rows.append(
            {
                "N": n,
                "ours floor(N^2/4)": ours,
                "bisection LB": collinear_track_lower_bound(n),
                "Chen-Agrawal": prior,
                "naive": naive_track_count(n),
                "saving vs prior": f"{(1 - ours / prior) * 100:.1f}%",
            }
        )
        assert ours == collinear_track_lower_bound(n)
        assert prior > ours
    # the paper's 25% saving in the limit
    assert abs(1 - optimal_track_count(1024) / chen_agrawal_track_count(1024) - 0.25) < 0.01
    emit("APP-B: collinear layout track counts (paper: optimal = LB, 25% saving)",
         format_table(rows))
