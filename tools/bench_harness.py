#!/usr/bin/env python
"""Reproducible benchmark harness for the graph core and layout engine.

Times the vectorized bulk construction path against the per-edge
reference path for the paper's networks (swap-butterflies, butterflies,
swap networks) at dimensions up to ``--max-n``, times layout build +
validation for the grid scheme, pits the columnar WireTable layout
engine against the object-per-wire original (with a wire-for-wire
parity check), times the queued-routing simulator
(vectorized engine vs the pure-Python reference, single and batched,
with a packet-for-packet parity check), times the columnar packaging
engine against the per-link legacy enumerator (build + row/nucleus pin
counts, with a per-module-dict parity check, plus an exact-count
optimizer sweep at n = 16 that the object loops could not touch), times
the batched Benes routing engine against the legacy recursion (with a
bit-for-bit settings parity check), and runs a curated subset of the
``benchmarks/bench_*.py`` pytest-benchmark suite.  Results are written to ``BENCH_<date>.json`` in the repo root
(or ``--out``).

Usage::

    PYTHONPATH=src python tools/bench_harness.py            # full run
    PYTHONPATH=src python tools/bench_harness.py --smoke    # CI-sized run
    PYTHONPATH=src python tools/bench_harness.py --sim-smoke  # engine only
    PYTHONPATH=src python tools/bench_harness.py --layout-smoke  # layout only
    PYTHONPATH=src python tools/bench_harness.py --packaging-smoke  # pins only
    PYTHONPATH=src python tools/bench_harness.py --benes-smoke  # benes only
    PYTHONPATH=src python tools/bench_harness.py --backend-smoke  # backends only
    PYTHONPATH=src python tools/bench_harness.py --serve-smoke  # service only
    PYTHONPATH=src python tools/bench_harness.py --campaign-smoke  # campaign only
    PYTHONPATH=src python tools/bench_harness.py --max-n 12 --out /tmp/b.json

Methodology: each timed section runs ``gc.collect()`` first and reports
the best of ``--repeats`` runs (cold-start allocator noise and GC churn
over millions of live objects otherwise dominate; see the per-section
``repeats`` field in the output).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import gc
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.layout.grid_scheme import build_grid_layout  # noqa: E402
from repro.layout.validate import (  # noqa: E402
    validate_layout,
    validate_layout_legacy,
)
from repro.topology.butterfly import Butterfly  # noqa: E402
from repro.topology.graph import Graph  # noqa: E402
from repro.topology.swap import SwapNetwork, SwapNetworkParams  # noqa: E402
from repro.transform.swap_butterfly import SwapButterfly  # noqa: E402

#: The curated pytest-benchmark subset: one figure, one theorem, one
#: layout-engine and one scalability bench — enough to catch regressions
#: in every layer without running the whole (slow) suite.
CURATED_BENCHES = [
    "bench_fig1_isn_transform.py",
    "bench_fig2_swap_butterfly.py",
    "bench_fig4_collinear_k9.py",
    "bench_sec3_thompson.py",
    "bench_node_scalability.py",
]


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- per-edge reference constructors (the pre-vectorization code path) ----


def _swap_butterfly_per_edge(sb: SwapButterfly) -> Graph:
    g = Graph()
    for s in range(sb.stages):
        for u in range(sb.rows):
            g.add_node((u, s))
    for u, v, _kind in sb.links():
        g.add_edge(u, v)
    return g


def _butterfly_per_edge(b: Butterfly) -> Graph:
    g = Graph()
    for node in b.nodes():
        g.add_node(node)
    for u, v in b.edges():
        g.add_edge(u, v)
    return g


def _swap_network_per_edge(sn: SwapNetwork) -> Graph:
    g = Graph()
    g.add_nodes(range(sn.num_nodes))
    for u, v in sn.nucleus_links():
        g.add_edge(u, v)
    for level in range(2, sn.params.l + 1):
        for u, v in sn.inter_cluster_links(level):
            g.add_edge(u, v)
    return g


def bench_construction(
    ns: Sequence[int], repeats: int, per_edge_max_n: int
) -> List[Dict]:
    """Bulk vs per-edge construction across network families."""
    out: List[Dict] = []
    for n in ns:
        ks = SwapNetworkParams.for_dimension(n, 3).ks
        cases = [
            ("swap-butterfly", SwapButterfly.from_ks(ks),
             lambda o: o.graph(), _swap_butterfly_per_edge),
            ("butterfly", Butterfly(n),
             lambda o: o.graph(), _butterfly_per_edge),
            ("swap-network", SwapNetwork(SwapNetworkParams(ks)),
             lambda o: o.graph(), _swap_network_per_edge),
        ]
        for name, obj, bulk, per_edge in cases:
            bulk(obj)  # warm-up
            bulk_s = _best_of(lambda: bulk(obj), repeats)
            entry: Dict = {
                "network": name,
                "n": n,
                "ks": list(ks),
                "num_edges": bulk(obj).num_edges,
                "bulk_s": bulk_s,
                "repeats": repeats,
            }
            if n <= per_edge_max_n:
                per_edge_s = _best_of(lambda: per_edge(obj), repeats)
                entry["per_edge_s"] = per_edge_s
                entry["speedup"] = per_edge_s / bulk_s if bulk_s else None
            out.append(entry)
            print(
                f"  {name:15s} n={n:2d}: bulk {bulk_s * 1e3:9.2f} ms"
                + (
                    f"  per-edge {entry['per_edge_s'] * 1e3:9.2f} ms"
                    f"  speedup {entry['speedup']:6.1f}x"
                    if "per_edge_s" in entry
                    else "  (per-edge skipped)"
                )
            )
    return out


def bench_validation(ks_list: Sequence[Sequence[int]], repeats: int) -> List[Dict]:
    """Grid-scheme layout build + full validation."""
    out: List[Dict] = []
    for ks in ks_list:
        gc.collect()
        t0 = time.perf_counter()
        res = build_grid_layout(tuple(ks))
        build_s = time.perf_counter() - t0

        def run() -> None:
            validate_layout(res.layout, res.graph).raise_if_failed()

        run()  # warm-up + correctness
        validate_s = _best_of(run, repeats)
        out.append(
            {
                "ks": list(ks),
                "n": sum(ks),
                "num_wires": res.layout.num_wires(),
                "build_s": build_s,
                "validate_s": validate_s,
                "repeats": repeats,
            }
        )
        print(
            f"  grid layout ks={list(ks)}: build {build_s:7.2f} s  "
            f"validate {validate_s:7.2f} s"
        )
    return out


def bench_layout_engines(
    ks_list: Sequence[Sequence[int]], repeats: int, legacy_repeats: int = 1
) -> List[Dict]:
    """Columnar WireTable engine vs the object-per-wire original.

    For each size: build with both engines, check wire-for-wire parity
    (same nets, same segments, same order, same node rects), then time
    the vectorized validator against the legacy checker on the same
    geometry.  The legacy side runs ``legacy_repeats`` times (it is the
    slow side; best-of-many would only waste minutes).
    """
    out: List[Dict] = []
    for ks in ks_list:
        ks = tuple(ks)
        gc.collect()
        t0 = time.perf_counter()
        res_t = build_grid_layout(ks, engine="table")
        table_build_s = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        res_l = build_grid_layout(ks, engine="legacy")
        legacy_build_s = time.perf_counter() - t0

        # wire-for-wire parity, order included.  to_wires() keeps the
        # native table intact, so validation below stays columnar.
        wt = res_t.layout.wire_table().to_wires()
        wl = res_l.layout.wires
        parity = (
            res_t.layout.nodes == res_l.layout.nodes
            and len(wt) == len(wl)
            and all(
                a.net == b.net and a.segments == b.segments
                for a, b in zip(wt, wl)
            )
        )
        del wt

        def vec() -> None:
            validate_layout(res_t.layout, res_t.graph).raise_if_failed()

        vec()  # warm-up + correctness
        vec_validate_s = _best_of(vec, repeats)

        def leg() -> None:
            validate_layout_legacy(res_l.layout, res_l.graph).raise_if_failed()

        legacy_validate_s = _best_of(leg, legacy_repeats)

        entry = {
            "ks": list(ks),
            "n": sum(ks),
            "num_wires": res_t.layout.num_wires(),
            "num_segments": res_t.layout.segment_count(),
            "wire_parity": parity,
            "table_build_s": table_build_s,
            "legacy_build_s": legacy_build_s,
            "vec_validate_s": vec_validate_s,
            "legacy_validate_s": legacy_validate_s,
            "repeats": repeats,
            "legacy_repeats": legacy_repeats,
            "speedup_build": legacy_build_s / table_build_s,
            "speedup_validate": legacy_validate_s / vec_validate_s,
            "speedup_total": (legacy_build_s + legacy_validate_s)
            / (table_build_s + vec_validate_s),
        }
        out.append(entry)
        print(
            f"  layout engines ks={list(ks)}: build {table_build_s:6.2f} s "
            f"vs {legacy_build_s:6.2f} s ({entry['speedup_build']:.1f}x)  "
            f"validate {vec_validate_s:6.2f} s vs {legacy_validate_s:6.2f} s "
            f"({entry['speedup_validate']:.1f}x)  total "
            f"{entry['speedup_total']:.1f}x  "
            f"parity {'OK' if parity else 'FAILED'}"
        )
    return out


def bench_queued_routing(
    n: int, cycles: int, warmup: int, rate: float, repeats: int, batch: int
) -> Dict:
    """Vectorized queued-routing engine vs the pure-Python reference.

    Times three things interleaved (so machine-load drift hits both
    engines alike, best-of-``repeats`` each): the legacy loop, a single
    vectorized run, and a ``batch``-job batched run — the production
    :func:`sweep_rates` shape.  Also checks packet-for-packet parity of
    the two engines and exercises the ``StatsTrace`` CSV/JSON export.
    """
    from repro.algorithms.queued_routing import (  # noqa: PLC0415
        _run_batch,
        simulate_butterfly_queued,
        simulate_butterfly_queued_legacy,
    )

    jobs = [(rate, s) for s in range(batch)]
    # warm-up: allocator, lookup tables, numpy dispatch caches
    simulate_butterfly_queued(n, rate, cycles=min(cycles, 300),
                              warmup=min(warmup, 30), seed=3)
    _run_batch(n, jobs, min(cycles, 300), min(warmup, 30), None)
    legacy_s = vec_s = batch_s = float("inf")
    vres = lres = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        lres = simulate_butterfly_queued_legacy(
            n, rate, cycles=cycles, warmup=warmup, seed=3)
        legacy_s = min(legacy_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        vres = simulate_butterfly_queued(
            n, rate, cycles=cycles, warmup=warmup, seed=3)
        vec_s = min(vec_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run_batch(n, jobs, cycles, warmup, None)
        batch_s = min(batch_s, time.perf_counter() - t0)
    parity = all(
        getattr(vres, f) == getattr(lres, f)
        for f in ("offered", "delivered", "drained", "in_flight")
    ) and abs(vres.avg_latency - lres.avg_latency) < 1e-9

    tr = simulate_butterfly_queued(
        min(n, 5), 0.7, cycles=400, warmup=50, trace=True).trace
    with tempfile.TemporaryDirectory() as tmp:
        tr.to_csv(os.path.join(tmp, "sim_trace.csv"))
        tr.to_json(os.path.join(tmp, "sim_trace.json"))

    entry = {
        "n": n,
        "rate_per_input": rate,
        "cycles": cycles,
        "warmup": warmup,
        "repeats": repeats,
        "batch_jobs": batch,
        "legacy_s": legacy_s,
        "vectorized_s": vec_s,
        "batch_s": batch_s,
        "batch_per_job_s": batch_s / batch,
        "speedup_single": legacy_s / vec_s,
        "speedup_batched": batch * legacy_s / batch_s,
        "parity": parity,
        "delivered_total": vres.delivered + vres.drained,
        "trace_cycles": int(tr.cycle.size),
    }
    print(
        f"  queued-routing n={n}: legacy {legacy_s:7.3f} s  "
        f"vectorized {vec_s:7.3f} s ({entry['speedup_single']:.1f}x)  "
        f"batch[{batch}] {batch_s / batch:7.3f} s/job "
        f"({entry['speedup_batched']:.1f}x)  "
        f"parity {'OK' if parity else 'FAILED'}"
    )
    return entry


def bench_packaging(
    ks_list: Sequence[Sequence[int]],
    repeats: int,
    legacy_repeats: int = 1,
    exact_sweep_n: Optional[int] = None,
    exact_workers: Optional[int] = None,
) -> Dict:
    """Columnar packaging engine vs the per-link legacy enumerator.

    Each timed run is build + count from scratch — construct the
    swap-butterfly and count off-module links of both the row and the
    nucleus partition — so the speedup covers the whole pin-accounting
    path, not just the inner kernel.  Parity checks totals *and* the
    per-module dicts.  ``exact_sweep_n`` additionally times the
    ``optimize_packaging(..., exact=True)`` sweep (columnar only: the
    legacy loops made it infeasible at n = 16).
    """
    from repro.packaging.optimizer import optimize_packaging  # noqa: PLC0415
    from repro.packaging.partition import (  # noqa: PLC0415
        NucleusPartition,
        RowPartition,
    )
    from repro.packaging.pins import (  # noqa: PLC0415
        count_off_module_links,
        count_off_module_links_legacy,
    )

    entries: List[Dict] = []
    for ks in ks_list:
        ks = tuple(ks)

        def columnar():
            sb = SwapButterfly.from_ks(ks)
            return (
                count_off_module_links(RowPartition.natural(sb)),
                count_off_module_links(NucleusPartition(sb)),
            )

        def legacy():
            sb = SwapButterfly.from_ks(ks)
            return (
                count_off_module_links_legacy(RowPartition.natural(sb)),
                count_off_module_links_legacy(NucleusPartition(sb)),
            )

        crow, cnuc = columnar()  # warm-up + parity data
        lrow, lnuc = legacy()
        parity = all(
            a.off_module_links == b.off_module_links
            and a.num_modules == b.num_modules
            and a.per_module == b.per_module
            and a.nodes_per_module == b.nodes_per_module
            for a, b in ((crow, lrow), (cnuc, lnuc))
        )
        col_s = _best_of(columnar, repeats)
        leg_s = _best_of(legacy, legacy_repeats)
        entry = {
            "ks": list(ks),
            "n": sum(ks),
            "num_links": crow.total_links,
            "row_off_module": crow.off_module_links,
            "nucleus_off_module": cnuc.off_module_links,
            "columnar_s": col_s,
            "legacy_s": leg_s,
            "repeats": repeats,
            "legacy_repeats": legacy_repeats,
            "parity": parity,
            "speedup": leg_s / col_s if col_s else None,
        }
        entries.append(entry)
        print(
            f"  packaging ks={list(ks)}: build+count {col_s * 1e3:8.2f} ms "
            f"vs {leg_s * 1e3:8.2f} ms ({entry['speedup']:.1f}x)  "
            f"parity {'OK' if parity else 'FAILED'}"
        )

    sweep = None
    if exact_sweep_n is not None:
        gc.collect()
        t0 = time.perf_counter()
        cands = optimize_packaging(
            exact_sweep_n, exact=True, workers=exact_workers
        )
        sweep_s = time.perf_counter() - t0
        verified = all(
            c.exact_pins is not None and c.exact_pins <= c.pins_per_module
            for c in cands
        )
        sweep = {
            "n": exact_sweep_n,
            "num_candidates": len(cands),
            "workers": exact_workers,
            "exact_sweep_s": sweep_s,
            "all_verified": verified,
        }
        print(
            f"  exact optimizer sweep n={exact_sweep_n}: "
            f"{len(cands)} candidates verified in {sweep_s:.2f} s "
            f"({'OK' if verified else 'FAILED'})"
        )
    return {"counts": entries, "exact_sweep": sweep}


def bench_benes(
    n: int, batch: int, repeats: int, legacy_count: int, parity_rows: int
) -> Dict:
    """Batched Benes routing engine vs the legacy recursion.

    Routes a seeded ``(batch, 2**n)`` permutation batch through
    :func:`route_permutations`, times the legacy recursion on
    ``legacy_count`` of the same permutations (the slow side; the total
    is scaled to the batch size), and gates on two kinds of parity:
    settings bit-for-bit identical to ``route_permutation_legacy`` on an
    exhaustive N=4 grid plus ``parity_rows`` rows of the batch, and
    ``apply_settings_batch`` realizing exactly the input permutations.
    """
    import itertools  # noqa: PLC0415

    from repro.algorithms.benes_routing import (  # noqa: PLC0415
        apply_settings_batch,
        route_permutation_legacy,
        route_permutations,
    )

    rng = np.random.default_rng(12345)
    N = 1 << n
    perms = np.array([rng.permutation(N) for _ in range(batch)])
    route_permutations(perms[: max(1, batch // 10)])  # warm-up
    batch_s = float("inf")
    settings = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        settings = route_permutations(perms)
        batch_s = min(batch_s, time.perf_counter() - t0)

    gc.collect()
    t0 = time.perf_counter()
    legacy = [route_permutation_legacy(perms[i].tolist())
              for i in range(legacy_count)]
    legacy_s = time.perf_counter() - t0
    legacy_est_s = legacy_s / legacy_count * batch

    parity = all(
        np.array_equal(settings.crossed[i], legacy[i].to_array())
        for i in range(min(parity_rows, legacy_count))
    )
    for small in itertools.permutations(range(4)):
        got = route_permutations([list(small)]).crossed[0]
        want = route_permutation_legacy(list(small)).to_array()
        parity &= np.array_equal(got, want)
    realized_ok = bool(np.array_equal(apply_settings_batch(settings), perms))

    entry = {
        "n": n,
        "batch": batch,
        "repeats": repeats,
        "legacy_count": legacy_count,
        "batch_s": batch_s,
        "per_perm_s": batch_s / batch,
        "legacy_est_s": legacy_est_s,
        "legacy_per_perm_s": legacy_s / legacy_count,
        "speedup": legacy_est_s / batch_s,
        "settings_parity": parity,
        "realized_ok": realized_ok,
        "mean_crossed": float(settings.count_crossed().mean()),
    }
    print(
        f"  benes n={n}: batch[{batch}] {batch_s:7.3f} s "
        f"({batch_s / batch * 1e3:.2f} ms/perm)  legacy "
        f"{legacy_s / legacy_count * 1e3:.2f} ms/perm "
        f"({entry['speedup']:.1f}x)  settings parity "
        f"{'OK' if parity else 'FAILED'}  realized "
        f"{'OK' if realized_ok else 'FAILED'}"
    )
    return entry


def bench_backends(repeats: int = 3) -> Dict:
    """Array-ops backend matrix: every available backend runs each
    engine's hot path on identical inputs.

    The NumPy backend is the reference — every other backend that
    reports itself available must reproduce its results exactly (sim
    counters, Benes settings, pin counts, layout verdicts, chunked
    verdicts).  Per (engine, backend) cell: best-of-``repeats`` wall
    time plus a parity flag.  A dispatch-overhead micro-bench times the
    facade's ``gather``/``cummax`` against raw :mod:`numpy` calls on a
    large array — the facade indirection must stay in the noise (the
    acceptance floor for the NumPy path is no more than a 5% penalty
    at engine scale, where per-call overhead amortizes to nothing).
    """
    from repro.algorithms.benes_routing import route_permutations  # noqa: PLC0415
    from repro.algorithms.queued_routing import (  # noqa: PLC0415
        simulate_butterfly_queued,
    )
    from repro.backend import available_backends, get_backend  # noqa: PLC0415
    from repro.layout import (  # noqa: PLC0415
        chunked_collinear_table,
        collinear_layout,
        validate_table,
        validate_table_chunked,
    )
    from repro.packaging.partition import RowPartition  # noqa: PLC0415
    from repro.packaging.pins import count_off_module_links  # noqa: PLC0415
    from repro.topology.complete import complete_multigraph  # noqa: PLC0415

    rng = np.random.default_rng(7)
    perms = np.array([rng.permutation(256) for _ in range(128)])
    sb = SwapButterfly.from_ks((3, 2, 1))
    lay = collinear_layout(9, 2).layout
    table = lay.wire_table()
    kcg = complete_multigraph(9, 2)

    def _chunked(be):
        c = chunked_collinear_table(9, 2, memory_budget_bytes=64 * 1024)
        return validate_table_chunked(
            c.chunks(), c.nodes, c.model, graph=kcg, backend=be)

    engines = [
        ("sim", lambda be: simulate_butterfly_queued(
            6, 0.8, cycles=800, warmup=80, seed=1, backend=be)),
        ("benes", lambda be: route_permutations(perms, backend=be)),
        ("packaging", lambda be: count_off_module_links(
            RowPartition.natural(sb), backend=be)),
        ("validate", lambda be: validate_table(
            table, lay.nodes, lay.model, graph=kcg, backend=be)),
        ("chunked-validate", _chunked),
    ]

    def _same(name: str, ref, got) -> bool:
        if name == "benes":
            return bool(np.array_equal(ref.crossed, got.crossed))
        return ref == got

    names = available_backends()
    matrix: Dict[str, Dict[str, Dict]] = {}
    for ename, run in engines:
        ref = run("numpy")
        row: Dict[str, Dict] = {}
        for bname in names:
            got = run(bname)  # warm-up (jit compile on numba) + parity
            cell = {
                "s": _best_of(lambda: run(bname), repeats),
                "parity": _same(ename, ref, got),
            }
            row[bname] = cell
        matrix[ename] = row
        cells = "  ".join(
            f"{b} {row[b]['s'] * 1e3:8.2f} ms "
            f"{'OK' if row[b]['parity'] else 'FAILED'}"
            for b in names
        )
        print(f"  backends {ename:16s}: {cells}")

    # facade-dispatch micro-overhead on raw numpy (amortized at 1e6 elems)
    be = get_backend("numpy")
    data = rng.integers(0, 1 << 30, size=1_000_000)
    idx = rng.integers(0, data.size, size=data.size)
    direct_s = _best_of(lambda: (data[idx],
                                 np.maximum.accumulate(data)), repeats)
    facade_s = _best_of(lambda: (be.gather(data, idx),
                                 be.cummax(data)), repeats)
    overhead = facade_s / direct_s if direct_s else None
    print(f"  backends dispatch overhead: facade {facade_s * 1e3:.2f} ms "
          f"vs direct {direct_s * 1e3:.2f} ms ({overhead:.3f}x)")
    return {
        "available": names,
        "repeats": repeats,
        "engines": matrix,
        "dispatch": {
            "direct_s": direct_s,
            "facade_s": facade_s,
            "overhead": overhead,
        },
    }


def _gate_backends(section: Dict) -> int:
    """Hard gates for the backend matrix (smoke and full runs)."""
    bad = [
        f"{ename}/{bname}"
        for ename, row in section["engines"].items()
        for bname, cell in row.items()
        if not cell["parity"]
    ]
    if bad:
        print(f"ERROR: backend parity failed for {', '.join(bad)}",
              file=sys.stderr)
        return 1
    if "numpy" not in section["available"]:
        print("ERROR: numpy backend missing from available_backends()",
              file=sys.stderr)
        return 1
    if section["dispatch"]["overhead"] > 1.05:
        print(f"WARNING: backend facade dispatch overhead "
              f"{section['dispatch']['overhead']:.3f}x exceeds the 1.05x "
              f"(5%) NumPy-path floor", file=sys.stderr)
        return 1
    return 0


def bench_serve(ks: Sequence[int], warm_repeats: int = 5) -> Dict:
    """Cached design-query service: cold compute vs warm cache hit.

    Runs the ``layout`` query against a throwaway artifact store — the
    cold call builds, validates and serializes the layout; the warm
    calls must read it back from disk.  Gates on the warm result being
    byte-identical (canonical JSON) to the cold one; the full-run
    acceptance floor is a 100x warm speedup at ``B_12``.
    """
    from repro.service import ArtifactStore, canonical_json, query  # noqa: PLC0415

    ks = tuple(ks)
    params = {"ks": list(ks)}
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(os.path.join(tmp, "cache"))
        info_cold: Dict = {}
        gc.collect()
        t0 = time.perf_counter()
        cold = query("layout", dict(params), store=store, info=info_cold)
        cold_s = time.perf_counter() - t0

        warm = None
        info_warm: Dict = {}
        warm_s = float("inf")
        for _ in range(warm_repeats):
            info_warm = {}
            t0 = time.perf_counter()
            warm = query("layout", dict(params), store=store, info=info_warm)
            warm_s = min(warm_s, time.perf_counter() - t0)

        byte_identical = canonical_json(cold) == canonical_json(warm)
        entry = {
            "ks": list(ks),
            "n": sum(ks),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s else None,
            "warm_repeats": warm_repeats,
            "cold_status": info_cold.get("cache"),
            "warm_status": info_warm.get("cache"),
            "byte_identical": byte_identical,
            "key": info_cold.get("key"),
        }
    print(
        f"  serve ks={list(ks)}: cold {cold_s:7.3f} s  warm "
        f"{warm_s * 1e3:7.3f} ms ({entry['speedup']:.0f}x)  "
        f"{info_cold.get('cache')}/{info_warm.get('cache')}  "
        f"byte-identical {'OK' if byte_identical else 'FAILED'}"
    )
    return entry


def bench_serve_http(ks: Sequence[int] = (2, 2, 2)) -> Dict:
    """HTTP smoke for ``repro serve``: in-process server on an ephemeral
    port, one cold and one warm ``/v1/layout`` query (bodies must be
    byte-identical, headers must flip miss -> hit), then a bit-flipped
    payload that ``ArtifactStore.verify()`` must flag and quarantine."""
    import threading  # noqa: PLC0415
    import urllib.request  # noqa: PLC0415

    from repro.service import ArtifactStore, make_server  # noqa: PLC0415

    ks = tuple(ks)
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(os.path.join(tmp, "cache"))
        srv = make_server(host="127.0.0.1", port=0, store=store, quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            url = (
                f"http://127.0.0.1:{srv.server_address[1]}/v1/layout"
                f"?ks={','.join(map(str, ks))}"
            )
            gc.collect()
            t0 = time.perf_counter()
            with urllib.request.urlopen(url) as resp:
                cold_body = resp.read()
                cold_status = resp.headers.get("X-Repro-Cache")
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            with urllib.request.urlopen(url) as resp:
                warm_body = resp.read()
                warm_status = resp.headers.get("X-Repro-Cache")
            warm_s = time.perf_counter() - t0
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.server_close()

        # flip one payload byte on disk; verify() must catch it
        payloads = [
            os.path.join(dirpath, f)
            for dirpath, _dirs, files in os.walk(os.path.join(tmp, "cache"))
            for f in files
            if f == "payload.npz"
        ]
        with open(payloads[0], "r+b") as fh:
            fh.seek(100)
            b = fh.read(1)
            fh.seek(100)
            fh.write(bytes([b[0] ^ 0xFF]))
        vrep = store.verify()

    entry = {
        "ks": list(ks),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else None,
        "cold_status": cold_status,
        "warm_status": warm_status,
        "byte_identical": cold_body == warm_body,
        "verify_after_bitflip": vrep,
        "corruption_caught": len(vrep["corrupt"]) >= 1
        and vrep["quarantined"] >= 1,
    }
    print(
        f"  serve http ks={list(ks)}: cold {cold_s * 1e3:7.2f} ms "
        f"({cold_status})  warm {warm_s * 1e3:7.2f} ms ({warm_status})  "
        f"byte-identical {'OK' if entry['byte_identical'] else 'FAILED'}  "
        f"bit-flip {'caught' if entry['corruption_caught'] else 'MISSED'}"
    )
    return entry


#: The campaign smoke grid: every 3+-level partition of n = 6 (equal
#: per-point simulation cost, so worker sharding has a fair target), one
#: rate, full stage pipeline including the saturation bisection.
CAMPAIGN_SMOKE_SPEC = {
    "ks": [[3, 2, 1], [2, 2, 2], [2, 2, 1, 1], [2, 1, 1, 1, 1],
           [3, 1, 1, 1], [1, 1, 1, 1, 1, 1]],
    "rate": [0.8],
    "config": {"cycles": 3000, "warmup": 300, "benes_batch": 32,
               "sat_max_n": 6},
}


def bench_campaign(workers: int = 3) -> Dict:
    """Campaign orchestrator: worker sharding + kill/resume byte-identity.

    Three cold runs of the smoke grid, each in its own run tree with its
    own run-local cache: serial, sharded across ``workers``, and a
    sharded run that then gets damaged (one stage record truncated
    mid-write, another deleted along with the manifest) and resumed.
    Gates: the sharded and resumed manifests/frontiers must be
    byte-identical to the serial run's, the resume must re-run only the
    damaged checkpoints, every per-point verify proof must hold, and
    sharding must actually pay for itself.
    """
    from repro.campaign import resume_run, start_run  # noqa: PLC0415

    spec = CAMPAIGN_SMOKE_SPEC

    def outputs(run_dir: str):
        with open(os.path.join(run_dir, "manifest.json"), "rb") as fh:
            manifest = fh.read()
        with open(os.path.join(run_dir, "frontier.json"), "rb") as fh:
            frontier = fh.read()
        return manifest, frontier

    with tempfile.TemporaryDirectory() as tmp:
        gc.collect()
        t0 = time.perf_counter()
        serial = start_run(spec, runs_dir=os.path.join(tmp, "serial"),
                           run_id="bench")
        serial_s = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        sharded = start_run(spec, runs_dir=os.path.join(tmp, "sharded"),
                            run_id="bench", workers=workers)
        sharded_s = time.perf_counter() - t0

        m_serial, f_serial = outputs(serial["run_dir"])
        identical_sharded = outputs(sharded["run_dir"]) == (m_serial, f_serial)

        manifest = json.loads(m_serial)
        proofs_verified = all(
            q["verified"]
            for point in manifest["points"]
            for stage in point["stages"].values()
            for q in stage["queries"]
        )

        # third run, then simulate a mid-flight kill: truncate one stage
        # record (torn write), delete another plus the manifest
        victim = start_run(spec, runs_dir=os.path.join(tmp, "victim"),
                           run_id="bench", workers=workers)
        vdir = victim["run_dir"]
        with open(os.path.join(vdir, "points", "p0002", "stages",
                               "saturation.json"), "r+b") as fh:
            fh.truncate(23)
        os.unlink(os.path.join(vdir, "points", "p0004", "stages",
                               "benes.json"))
        os.unlink(os.path.join(vdir, "manifest.json"))
        resumed = resume_run(vdir)
        identical_resumed = outputs(vdir) == (m_serial, f_serial)

    total_stages = serial["stages_run"]
    entry = {
        "points": serial["points"],
        "total_stages": total_stages,
        "workers": workers,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s if sharded_s else None,
        "byte_identical_sharded": identical_sharded,
        "resume_stages_run": resumed["stages_run"],
        "resume_partial": 0 < resumed["stages_run"] < total_stages,
        "byte_identical_resumed": identical_resumed,
        "proofs_verified": proofs_verified,
        "failed_points": serial["counts"]["failed"],
        "frontier_points": serial["frontier_points"],
    }
    print(
        f"  campaign {entry['points']} pts/{total_stages} stages: serial "
        f"{serial_s:6.2f} s  sharded[{workers}] {sharded_s:6.2f} s "
        f"({entry['speedup']:.1f}x)  sharded bytes "
        f"{'OK' if identical_sharded else 'FAILED'}  resume "
        f"{resumed['stages_run']}/{total_stages} stages, bytes "
        f"{'OK' if identical_resumed else 'FAILED'}  proofs "
        f"{'OK' if proofs_verified else 'FAILED'}"
    )
    return entry


def _gate_campaign(entry: Dict) -> int:
    """Shared hard gates for the campaign section (smoke and full)."""
    if not entry["byte_identical_sharded"]:
        print("ERROR: sharded campaign manifest/frontier differ from the "
              "serial run", file=sys.stderr)
        return 1
    if not entry["byte_identical_resumed"] or not entry["resume_partial"]:
        print(f"ERROR: damaged campaign resume ran "
              f"{entry['resume_stages_run']}/{entry['total_stages']} stages "
              f"and byte-identity "
              f"{'held' if entry['byte_identical_resumed'] else 'BROKE'}",
              file=sys.stderr)
        return 1
    if not entry["proofs_verified"]:
        print("ERROR: a campaign verify-gate proof failed its digest "
              "cross-check", file=sys.stderr)
        return 1
    if entry["failed_points"]:
        print(f"ERROR: {entry['failed_points']} smoke-grid point(s) failed",
              file=sys.stderr)
        return 1
    # the speedup floor scales with the cores actually available: on a
    # single-core runner sharding cannot win wall-clock, so gate on the
    # overhead staying bounded instead
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        floor = 2.0 if cpus >= 4 else 1.2
        if entry["speedup"] < floor:
            print(f"WARNING: campaign sharding speedup "
                  f"{entry['speedup']:.1f}x below the {floor}x floor "
                  f"({cpus} cpus)", file=sys.stderr)
            return 1
    elif entry["sharded_s"] > entry["serial_s"] * 1.5:
        print(f"WARNING: campaign sharding overhead "
              f"{entry['sharded_s']:.2f} s vs {entry['serial_s']:.2f} s "
              f"serial on a single-core runner", file=sys.stderr)
        return 1
    return 0


def bench_chunked_parallel(
    ks: Sequence[int] = (5, 5, 4),
    memory_budget: int = 24 << 20,
    workers_list: Sequence[int] = (1, 2, 4),
    check_monolithic: bool = True,
) -> Dict:
    """Parallel streaming layout pipeline: chunked grid build+validate
    under a fixed memory budget, serial reducer vs worker pools.

    Parity is byte-level: verdicts, capped error-message lists and
    summary stats must be identical at every worker count — and to the
    monolithic validator when ``check_monolithic`` — so the parallel
    path is a pure execution knob.  Every validate pass (serial
    reference included, so timings stay comparable) runs under
    tracemalloc; spreading the feed across workers must not inflate the
    parent's peak beyond the serial reducer's (the monolithic table's
    footprint is recorded alongside for context).
    """
    import tracemalloc  # noqa: PLC0415

    from repro.layout import (  # noqa: PLC0415
        chunked_grid_table,
        grid_chunk_estimate,
        grid_graph,
    )

    ks = tuple(ks)
    graph = grid_graph(SwapButterfly.from_ks(ks))
    est = grid_chunk_estimate(ks, memory_budget_bytes=memory_budget)

    def timed_validate(workers):
        gc.collect()
        tracemalloc.start()
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        build = chunked_grid_table(ks, memory_budget_bytes=memory_budget)
        rep, summ = build.validate_and_summarize(graph=graph, workers=workers)
        dt = time.perf_counter() - t0
        _cur, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return rep, summ, dt, int(peak)

    rep_ref, summ_ref, serial_s, serial_peak = timed_validate(None)

    mono_parity = None
    mono_bytes = None
    if check_monolithic:
        res = build_grid_layout(ks)
        t = res.layout.wire_table()
        mono_bytes = int(
            t.indptr.nbytes + t.x1.nbytes + t.y1.nbytes
            + t.x2.nbytes + t.y2.nbytes + t.layer.nbytes
        )
        mono_rep = validate_layout(res.layout, res.graph)
        mono_parity = (
            rep_ref.ok == mono_rep.ok
            and list(rep_ref.errors) == list(mono_rep.errors)
            and summ_ref == res.layout.summary()
        )
        del res, t, mono_rep
        gc.collect()

    runs: List[Dict] = []
    for w in workers_list:
        rep, summ, dt, peak = timed_validate(int(w))
        runs.append(
            {
                "workers": int(w),
                "s": dt,
                "speedup": serial_s / dt if dt else None,
                "parity": (
                    rep.ok == rep_ref.ok
                    and list(rep.errors) == list(rep_ref.errors)
                    and summ == summ_ref
                ),
                "parent_peak_bytes": peak,
            }
        )
        r = runs[-1]
        print(
            f"  chunked-parallel ks={ks} w={w}: {dt:6.2f} s "
            f"({r['speedup']:.2f}x vs serial {serial_s:.2f} s)  parity "
            f"{'OK' if r['parity'] else 'FAILED'}  parent peak "
            f"{peak / (1 << 20):6.1f} MiB"
        )
    if check_monolithic:
        print(
            f"  chunked-parallel monolithic table {mono_bytes / (1 << 20):.1f}"
            f" MiB, verdict/summary parity {'OK' if mono_parity else 'FAILED'}"
        )
    return {
        "ks": list(ks),
        "wires": int(summ_ref["wires"]),
        "memory_budget_bytes": int(memory_budget),
        "chunks": int(est["chunks"]),
        "wires_per_chunk": int(est["wires_per_chunk"]),
        "serial_s": serial_s,
        "serial_parent_peak_bytes": serial_peak,
        "monolithic_table_bytes": mono_bytes,
        "monolithic_parity": mono_parity,
        "runs": runs,
    }


def _gate_chunked_parallel(section: Dict, smoke: bool) -> int:
    """Hard gates for the parallel chunked pipeline section.

    Parity and the parent-memory ceiling (serial reducer's peak + 25%)
    always gate.  The speedup floor is cpu-scaled like the campaign
    gate: the recorded >= 2.5x target at 4 workers only applies on
    runners with >= 4 cores and outside smoke runs; single-core runners
    gate on bounded overhead instead.
    """
    bad = [r["workers"] for r in section["runs"] if not r["parity"]]
    if bad or section["monolithic_parity"] is False:
        who = ", ".join(f"workers={w}" for w in bad) or "monolithic"
        print(f"ERROR: parallel chunked validate diverged from the serial "
              f"reducer ({who})", file=sys.stderr)
        return 1
    ceiling = int(section["serial_parent_peak_bytes"] * 1.25)
    over = [
        r["workers"] for r in section["runs"]
        if r["workers"] > 1 and r["parent_peak_bytes"] >= ceiling
    ]
    if over:
        print(f"ERROR: parent peak exceeded the serial reducer's "
              f"{section['serial_parent_peak_bytes']} bytes (+25%) at "
              f"workers {over}", file=sys.stderr)
        return 1
    cpus = os.cpu_count() or 1
    multi = [r for r in section["runs"] if r["workers"] > 1]
    if not multi:
        return 0
    best = max(r["speedup"] for r in multi)
    if cpus >= 4:
        floor = 1.3 if smoke else 2.5
        if best < floor:
            print(f"WARNING: parallel chunked speedup {best:.1f}x below "
                  f"the {floor}x floor ({cpus} cpus)", file=sys.stderr)
            return 1
    elif cpus >= 2:
        if best < 1.1:
            print(f"WARNING: parallel chunked speedup {best:.1f}x below "
                  f"the 1.1x floor ({cpus} cpus)", file=sys.stderr)
            return 1
    else:
        slowest = max(r["s"] for r in multi)
        if slowest > section["serial_s"] * 3.0:
            print(f"WARNING: parallel chunked overhead {slowest:.2f} s vs "
                  f"{section['serial_s']:.2f} s serial on a single-core "
                  f"runner", file=sys.stderr)
            return 1
    return 0


def run_curated_benches(benches: Sequence[str]) -> Optional[List[Dict]]:
    """Run the curated pytest-benchmark subset; fold in its stats."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "pytest_bench.json")
        cmd = [
            sys.executable, "-m", "pytest",
            *[os.path.join("benchmarks", b) for b in benches],
            "--benchmark-only", "-q", f"--benchmark-json={json_path}",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            print(proc.stdout[-2000:])
            print(proc.stderr[-2000:], file=sys.stderr)
            raise SystemExit(f"curated benchmark run failed ({proc.returncode})")
        with open(json_path) as fh:
            data = json.load(fh)
    out = []
    for b in data.get("benchmarks", []):
        out.append(
            {
                "name": b["name"],
                "mean_s": b["stats"]["mean"],
                "stddev_s": b["stats"]["stddev"],
                "rounds": b["stats"]["rounds"],
            }
        )
        print(f"  {b['name']:45s} mean {b['stats']['mean'] * 1e3:9.2f} ms")
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: small dimensions, no curated suite")
    ap.add_argument("--sim-smoke", action="store_true",
                    help="queued-routing engine smoke only: parity, "
                         "speedup and trace export at a CI-sized load")
    ap.add_argument("--layout-smoke", action="store_true",
                    help="layout engine smoke only: wire-for-wire parity "
                         "and build+validate speedup at a CI-sized size")
    ap.add_argument("--packaging-smoke", action="store_true",
                    help="packaging engine smoke only: per-module-dict "
                         "parity and build+count speedup at a CI-sized "
                         "size plus a small exact optimizer sweep")
    ap.add_argument("--benes-smoke", action="store_true",
                    help="Benes routing engine smoke only: bit-for-bit "
                         "settings parity vs the recursion and batched "
                         "speedup at a CI-sized batch")
    ap.add_argument("--backend-smoke", action="store_true",
                    help="array-ops backend smoke only: engine x backend "
                         "parity matrix plus the facade dispatch-overhead "
                         "floor on the NumPy path")
    ap.add_argument("--serve-smoke", action="store_true",
                    help="cached design-query service smoke only: HTTP "
                         "cold/warm byte-identity, warm >= 2x cold, and "
                         "bit-flip corruption detection")
    ap.add_argument("--campaign-smoke", action="store_true",
                    help="campaign orchestrator smoke only: serial vs "
                         "sharded byte-identity, damaged-run resume, "
                         "verify-gate proofs and a sharding speedup floor")
    ap.add_argument("--scale-smoke", action="store_true",
                    help="parallel chunked pipeline smoke only: B_10 under "
                         "a 4 MiB budget at 2 workers, gating byte-identity "
                         "vs the serial reducer and the monolithic "
                         "validator plus a parent-memory ceiling and a "
                         "cpu-scaled speedup floor")
    ap.add_argument("--max-n", type=int, default=16,
                    help="largest butterfly dimension to construct (default 16)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timed repetitions per measurement; best is reported")
    ap.add_argument("--out", type=str, default=None,
                    help="output JSON path (default BENCH_<date>.json in repo root)")
    args = ap.parse_args(argv)

    if args.smoke:
        ns = [n for n in (6, 8, 10) if n <= args.max_n]
        val_ks = [(2, 2, 2)]
        per_edge_max_n = 10
        repeats = 1
    else:
        ns = [n for n in (8, 10, 12, 14, 16) if n <= args.max_n]
        val_ks = [(2, 2, 2), (3, 3, 3), (4, 4, 4)]
        per_edge_max_n = min(args.max_n, 16)
        repeats = args.repeats

    date = _dt.date.today().isoformat()
    out_path = args.out or os.path.join(REPO_ROOT, f"BENCH_{date}.json")

    if args.layout_smoke:
        print("layout engine smoke (wire parity + build/validate speedup):")
        entries = bench_layout_engines([(2, 2, 2)], repeats=2)
        report = {
            "generated": date,
            "layout_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "layout_engines": entries,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        e = entries[0]
        if not e["wire_parity"]:
            print("ERROR: table engine layout diverged wire-for-wire from "
                  "the legacy builder", file=sys.stderr)
            return 1
        if e["speedup_total"] < 2.0:
            print(f"WARNING: layout engine speedup {e['speedup_total']:.1f}x "
                  f"below 2x smoke floor", file=sys.stderr)
            return 1
        return 0

    if args.packaging_smoke:
        print("packaging engine smoke (dict parity + build/count speedup):")
        section = bench_packaging([(3, 3, 3)], repeats=3, exact_sweep_n=10)
        report = {
            "generated": date,
            "packaging_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "packaging": section,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        e = section["counts"][0]
        if not e["parity"]:
            print("ERROR: columnar pin counts diverged from the legacy "
                  "enumerator", file=sys.stderr)
            return 1
        if e["speedup"] < 2.0:
            print(f"WARNING: packaging speedup {e['speedup']:.1f}x below "
                  f"2x smoke floor", file=sys.stderr)
            return 1
        if not section["exact_sweep"]["all_verified"]:
            print("ERROR: exact optimizer sweep failed verification",
                  file=sys.stderr)
            return 1
        return 0

    if args.benes_smoke:
        print("benes routing smoke (settings parity + batched speedup):")
        entry = bench_benes(n=6, batch=200, repeats=2,
                            legacy_count=50, parity_rows=20)
        report = {
            "generated": date,
            "benes_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "benes_routing": entry,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        if not entry["settings_parity"] or not entry["realized_ok"]:
            print("ERROR: batched Benes engine diverged from the legacy "
                  "recursion", file=sys.stderr)
            return 1
        if entry["speedup"] < 2.0:
            print(f"WARNING: benes speedup {entry['speedup']:.1f}x below "
                  f"2x smoke floor", file=sys.stderr)
            return 1
        return 0

    if args.backend_smoke:
        print("array-ops backend smoke (engine x backend parity matrix):")
        section = bench_backends(repeats=2)
        report = {
            "generated": date,
            "backend_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "backends": section,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        return _gate_backends(section)

    if args.serve_smoke:
        print("service smoke (HTTP byte-identity + corruption detection):")
        entry = bench_serve_http(ks=(2, 2, 2))
        report = {
            "generated": date,
            "serve_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "serve": entry,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        if not entry["byte_identical"]:
            print("ERROR: warm HTTP response differs from the cold compute",
                  file=sys.stderr)
            return 1
        if entry["warm_status"] != "hit" or entry["cold_status"] != "miss":
            print(f"ERROR: cache headers wrong (cold "
                  f"{entry['cold_status']}, warm {entry['warm_status']})",
                  file=sys.stderr)
            return 1
        if not entry["corruption_caught"]:
            print("ERROR: bit-flipped payload not quarantined by verify()",
                  file=sys.stderr)
            return 1
        if entry["speedup"] < 2.0:
            print(f"WARNING: warm hit speedup {entry['speedup']:.1f}x below "
                  f"2x smoke floor", file=sys.stderr)
            return 1
        return 0

    if args.campaign_smoke:
        print("campaign smoke (sharding + kill/resume byte-identity):")
        entry = bench_campaign(workers=3)
        report = {
            "generated": date,
            "campaign_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "campaign": entry,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        return _gate_campaign(entry)

    if args.scale_smoke:
        print("parallel chunked pipeline smoke (byte-identity + memory "
              "ceiling + cpu-scaled speedup):")
        section = bench_chunked_parallel(
            ks=(4, 3, 3), memory_budget=4 << 20, workers_list=(2,),
        )
        report = {
            "generated": date,
            "scale_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "chunked_parallel": section,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        return _gate_chunked_parallel(section, smoke=True)

    if args.sim_smoke:
        print("queued-routing smoke (parity + speedup + trace export):")
        entry = bench_queued_routing(
            n=6, cycles=1500, warmup=150, rate=0.8, repeats=2, batch=8)
        report = {
            "generated": date,
            "sim_smoke": True,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "queued_routing": entry,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
        if not entry["parity"]:
            print("ERROR: vectorized engine diverged from the reference",
                  file=sys.stderr)
            return 1
        if entry["speedup_batched"] < 2.0:
            print(f"WARNING: batched sim speedup "
                  f"{entry['speedup_batched']:.1f}x below 2x floor",
                  file=sys.stderr)
            return 1
        return 0

    print(f"construction (bulk vs per-edge, best of {repeats}):")
    construction = bench_construction(ns, repeats, per_edge_max_n)
    print("layout build + validation:")
    validation = bench_validation(val_ks, repeats)
    print("layout engines (columnar WireTable vs object-per-wire):")
    layout_engines = bench_layout_engines(val_ks, repeats)
    print("queued-routing simulator (legacy vs vectorized, interleaved):")
    if args.smoke:
        queued = bench_queued_routing(
            n=6, cycles=1500, warmup=150, rate=0.8, repeats=2, batch=8)
    else:
        queued = bench_queued_routing(
            n=8, cycles=2000, warmup=200, rate=0.8,
            repeats=max(repeats, 5), batch=16)
    print("packaging engine (columnar vs per-link legacy):")
    if args.smoke:
        packaging = bench_packaging([(3, 3, 3)], repeats=2, exact_sweep_n=10)
    else:
        packaging = bench_packaging(
            [(3, 3, 3), (4, 4, 4), (5, 5, 4)], repeats=repeats,
            exact_sweep_n=min(args.max_n, 16),
        )
    print("benes routing engine (batched vs legacy recursion):")
    if args.smoke:
        benes = bench_benes(n=6, batch=200, repeats=2,
                            legacy_count=50, parity_rows=20)
    else:
        benes = bench_benes(n=10, batch=1000, repeats=max(repeats, 3),
                            legacy_count=25, parity_rows=10)
    print("array-ops backends (engine x backend matrix):")
    backends = bench_backends(repeats=repeats if not args.smoke else 2)
    print("cached design-query service (cold compute vs warm hit):")
    serve = bench_serve(max(val_ks, key=sum), warm_repeats=5)
    print("campaign orchestrator (sharding + kill/resume byte-identity):")
    campaign = bench_campaign(workers=3)
    print("parallel chunked layout pipeline (serial reducer vs worker pools):")
    if args.smoke:
        chunked_parallel = bench_chunked_parallel(
            ks=(4, 3, 3), memory_budget=4 << 20, workers_list=(2,))
    else:
        chunked_parallel = bench_chunked_parallel(
            ks=(5, 5, 4), memory_budget=24 << 20, workers_list=(1, 2, 4))
    curated = None
    if not args.smoke:
        print("curated benchmark subset:")
        curated = run_curated_benches(CURATED_BENCHES)

    report = {
        "generated": date,
        "smoke": args.smoke,
        "max_n": args.max_n,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "construction": construction,
        "validation": validation,
        "layout_engines": layout_engines,
        "queued_routing": queued,
        "packaging": packaging,
        "benes_routing": benes,
        "backends": backends,
        "serve": serve,
        "campaign": campaign,
        "chunked_parallel": chunked_parallel,
        "curated_benchmarks": curated,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    # sanity gate: the vectorized path must actually be faster
    worst = min(
        (e["speedup"] for e in construction
         if e["network"] == "swap-butterfly" and e["n"] >= 12
         and e.get("speedup")),
        default=None,
    )
    if worst is not None and worst < 3.0:
        print(f"WARNING: swap-butterfly speedup {worst:.1f}x below 3x target",
              file=sys.stderr)
        return 1
    if not queued["parity"]:
        print("ERROR: vectorized queued-routing engine diverged from the "
              "reference", file=sys.stderr)
        return 1
    if any(not e["wire_parity"] for e in layout_engines):
        print("ERROR: table engine layout diverged wire-for-wire from the "
              "legacy builder", file=sys.stderr)
        return 1
    largest = max(layout_engines, key=lambda e: e["num_wires"])
    if not args.smoke and largest["speedup_total"] < 10.0:
        print(f"WARNING: layout engine speedup {largest['speedup_total']:.1f}x "
              f"at ks={largest['ks']} below the 10x acceptance floor",
              file=sys.stderr)
        return 1
    if any(not e["parity"] for e in packaging["counts"]):
        print("ERROR: columnar pin counts diverged from the legacy "
              "enumerator", file=sys.stderr)
        return 1
    big_pkg = max(packaging["counts"], key=lambda e: e["num_links"])
    if not args.smoke and big_pkg["speedup"] < 10.0:
        print(f"WARNING: packaging speedup {big_pkg['speedup']:.1f}x at "
              f"ks={big_pkg['ks']} below the 10x acceptance floor",
              file=sys.stderr)
        return 1
    if packaging["exact_sweep"] and not packaging["exact_sweep"]["all_verified"]:
        print("ERROR: exact optimizer sweep failed verification",
              file=sys.stderr)
        return 1
    if not benes["settings_parity"] or not benes["realized_ok"]:
        print("ERROR: batched Benes engine diverged from the legacy "
              "recursion", file=sys.stderr)
        return 1
    if not args.smoke and benes["speedup"] < 10.0:
        print(f"WARNING: benes speedup {benes['speedup']:.1f}x below the "
              f"10x acceptance floor", file=sys.stderr)
        return 1
    if not serve["byte_identical"]:
        print("ERROR: warm cache hit differs byte-for-byte from the cold "
              "compute", file=sys.stderr)
        return 1
    if not args.smoke and serve["speedup"] < 100.0:
        print(f"WARNING: warm-hit speedup {serve['speedup']:.0f}x at "
              f"ks={serve['ks']} below the 100x acceptance floor",
              file=sys.stderr)
        return 1
    if _gate_backends(backends):
        return 1
    if _gate_campaign(campaign):
        return 1
    if _gate_chunked_parallel(chunked_parallel, smoke=args.smoke):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
