#!/usr/bin/env python
"""Stdlib statement-coverage gate for the ``repro`` package.

Runs the tier-1 pytest suite under a ``sys.settrace`` line collector
restricted to ``src/repro`` and reports statement coverage: executed
lines over compiled-code lines (the union of ``co_lines()`` across all
code objects of every module, the same statement universe coverage.py
uses).  No third-party coverage dependency is needed, so the gate runs
in the bare container; CI additionally runs ``pytest --cov=repro``
(pytest-cov excludes docstrings and ``pragma: no cover`` lines, so its
percentage reads slightly *higher* than this tool's — a fail-under
derived from this tool is therefore conservative for both).

Usage::

    PYTHONPATH=src python tools/coverage_gate.py                # report
    PYTHONPATH=src python tools/coverage_gate.py --fail-under 80
    PYTHONPATH=src python tools/coverage_gate.py --per-file    # worst files

Multiprocessing children (the simulator's sweep workers) are not
traced; the measured number is a floor, not a ceiling.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from typing import Dict, Optional, Sequence, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
PKG_ROOT = os.path.join(SRC_ROOT, "repro")
sys.path.insert(0, SRC_ROOT)


def executable_lines() -> Dict[str, Set[int]]:
    """All code-object line numbers per module file under src/repro."""
    out: Dict[str, Set[int]] = {}
    for dirpath, _dirs, files in os.walk(PKG_ROOT):
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            with open(path) as fh:
                try:
                    code = compile(fh.read(), path, "exec")
                except SyntaxError:
                    continue
            lines: Set[int] = set()
            stack = [code]
            while stack:
                co = stack.pop()
                lines.update(
                    ln for _s, _e, ln in co.co_lines() if ln is not None
                )
                stack.extend(
                    c for c in co.co_consts if hasattr(c, "co_lines")
                )
            out[path] = lines
    return out


class LineCollector:
    """settrace hook recording executed (file, line) pairs in src/repro."""

    def __init__(self) -> None:
        self.hits: Set[Tuple[str, int]] = set()
        self._prefix = PKG_ROOT + os.sep

    def _local(self, frame, event, _arg):
        if event == "line":
            self.hits.add((frame.f_code.co_filename, frame.f_lineno))
        return self._local

    def global_trace(self, frame, event, _arg):
        if event != "call":
            return None
        fn = frame.f_code.co_filename
        if fn.startswith(self._prefix) or fn == PKG_ROOT:
            return self._local
        return None

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fail-under", type=float, default=None,
                    help="exit 1 if total statement coverage is below this")
    ap.add_argument("--per-file", action="store_true",
                    help="also print the ten worst-covered files")
    ap.add_argument("pytest_args", nargs="*",
                    help="extra pytest args (default: -x -q tests/)")
    args = ap.parse_args(argv)

    import pytest

    try:
        # Tracing slows hot loops ~20x; wall-clock deadlines would flake.
        from hypothesis import HealthCheck, settings

        settings.register_profile(
            "coverage-gate", deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        settings.load_profile("coverage-gate")
    except ImportError:
        pass

    collector = LineCollector()
    collector.install()
    try:
        rc = pytest.main(args.pytest_args or ["-x", "-q", "tests"])
    finally:
        collector.uninstall()
    if rc != 0:
        print(f"pytest failed (exit {rc}); coverage not evaluated",
              file=sys.stderr)
        return int(rc)

    universe = executable_lines()
    hit_by_file: Dict[str, Set[int]] = {}
    for fn, ln in collector.hits:
        hit_by_file.setdefault(fn, set()).add(ln)

    total_exec = total_hit = 0
    rows = []
    for path, lines in sorted(universe.items()):
        hit = len(lines & hit_by_file.get(path, set()))
        total_exec += len(lines)
        total_hit += hit
        pct = 100.0 * hit / len(lines) if lines else 100.0
        rows.append((pct, os.path.relpath(path, REPO_ROOT), hit, len(lines)))

    pct_total = 100.0 * total_hit / total_exec if total_exec else 100.0
    if args.per_file:
        print("\nworst-covered files:")
        for pct, rel, hit, n in sorted(rows)[:10]:
            print(f"  {pct:6.1f}%  {hit:5d}/{n:<5d}  {rel}")
    print(
        f"\nstatement coverage (src/repro): {total_hit}/{total_exec} "
        f"lines = {pct_total:.1f}%"
    )
    if args.fail_under is not None and pct_total < args.fail_under:
        print(
            f"FAILED coverage gate: {pct_total:.1f}% < "
            f"fail-under {args.fail_under:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
